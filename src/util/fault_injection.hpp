#pragma once
// Deterministic fault injection for robustness tests.
//
// Production code sprinkles `inject_fault(Site::k...)` at the few places
// where an external failure (aborted proof, stale candidate, corrupted
// journal delta) can originate. When no injector is installed — the normal
// case — the call is a null-pointer check and nothing else. Tests install a
// ScopedFaultInjector, arm the sites they want to misbehave, run the
// optimizer, and then assert that it degraded or rolled back instead of
// miscompiling.

#include <array>
#include <atomic>
#include <limits>

namespace powder {

class FaultInjector {
 public:
  enum class Site : int {
    kAtpgProof = 0,   ///< PODEM check reports kAborted without searching
    kSatProof,        ///< SAT check reports kAborted without solving
    kAcceptProof,     ///< optimizer skips pre-check + proof (bogus accept)
    kStaleCandidate,  ///< optimizer forces a corrupted candidate through
    kCorruptDelta,    ///< journal records a wrong inverse delta
    kCheckpointWrite, ///< WAL frame write fails midway (short write / ENOSPC)
    kCheckpointFsync, ///< fsync on the WAL descriptor reports failure
    kOutputWrite,     ///< atomic artifact write fails before the rename
    kAllocFail,       ///< scratch allocation on the checkpoint path fails
    kProofTransient,  ///< proof engine throws a transient (retryable) error
    kProofStall,      ///< proof worker stalls mid-job (watchdog bait)
    kCount_
  };
  static constexpr int kNumSites = static_cast<int>(Site::kCount_);

  /// Arms `site`: fire() returns true for occurrence numbers in
  /// [skip, skip + count), counted from the moment of arming.
  void arm(Site site, int skip = 0,
           int count = std::numeric_limits<int>::max());
  void disarm(Site site);

  /// Called by production code at the injection point. Counts the
  /// occurrence and decides whether the fault triggers.
  bool fire(Site site);

  /// How often the site was reached / actually triggered since arming.
  int occurrences(Site site) const;
  int fired(Site site) const;

  /// The process-wide injector; nullptr when none is installed.
  static FaultInjector* installed();
  static void install(FaultInjector* injector);

 private:
  // Occurrence counters are atomic: proof-engine sites (kAtpgProof,
  // kProofTransient, kProofStall) fire concurrently from pipeline workers.
  // Arming happens while the optimizer is quiescent, so skip/count stay
  // plain.
  struct SiteState {
    std::atomic<bool> armed{false};
    int skip = 0;
    int count = 0;
    std::atomic<int> seen{0};
    std::atomic<int> fired{0};
  };
  std::array<SiteState, kNumSites> sites_{};
};

/// Injection point helper: false whenever no injector is installed.
inline bool inject_fault(FaultInjector::Site site) {
  FaultInjector* fi = FaultInjector::installed();
  return fi != nullptr && fi->fire(site);
}

/// RAII installer for tests: installs its own injector on construction and
/// removes it on destruction.
class ScopedFaultInjector {
 public:
  ScopedFaultInjector() { FaultInjector::install(&injector_); }
  ~ScopedFaultInjector() { FaultInjector::install(nullptr); }
  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

  FaultInjector* operator->() { return &injector_; }
  FaultInjector& operator*() { return injector_; }

 private:
  FaultInjector injector_;
};

}  // namespace powder
