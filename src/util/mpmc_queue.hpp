#pragma once
// Bounded multi-producer / multi-consumer FIFO.
//
// The fast path is a lock-free ring of sequence-stamped slots (the classic
// bounded-MPMC shape, the same one the block_based_queue contenders use):
// producers CAS a head ticket, consumers CAS a tail ticket, and each slot's
// sequence number tells both sides whether the slot is ready for them. On
// top of that sit blocking push/pop — a thread parks on a condition
// variable only after registering as a waiter and re-running the lock-free
// attempt (the seq_cst fences make that re-check and the fast path's
// waiter-count probe a proper handshake, so no wakeup is ever lost) — and
// a `close()` that wakes everyone: a closed queue rejects new items but
// drains the ones already enqueued.
//
// Guarantees:
//  * items from one producer are dequeued in that producer's push order
//    (global order across producers is the ticket order),
//  * every pushed item is popped exactly once,
//  * capacity is a hard bound — push blocks (or try_push fails) when full.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>

#include "util/check.hpp"

namespace powder {

template <typename T>
class MpmcQueue {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit MpmcQueue(std::size_t capacity) {
    POWDER_CHECK_MSG(capacity > 0, "MpmcQueue capacity must be positive");
    capacity_ = 2;
    while (capacity_ < capacity) capacity_ *= 2;
    slots_ = std::make_unique<Slot[]>(capacity_);
    for (std::size_t i = 0; i < capacity_; ++i)
      slots_[i].sequence.store(i, std::memory_order_relaxed);
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// Items currently enqueued (approximate under concurrency).
  std::size_t size_approx() const {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    return head >= tail ? head - tail : 0;
  }

  /// Non-blocking push; false when the queue is full or closed. `value` is
  /// only moved from on success.
  bool try_push(T& value) {
    if (!core_push(value)) return false;
    notify_unlocked(&not_empty_);
    return true;
  }

  bool try_push(T&& value) { return try_push(value); }

  /// Non-blocking pop; nullopt when the queue is empty.
  std::optional<T> try_pop() {
    std::optional<T> v = core_pop();
    if (v) notify_unlocked(&not_full_);
    return v;
  }

  /// Blocking push (backpressure); false when the queue was closed before
  /// the item could be enqueued.
  bool push(T value) {
    for (;;) {
      if (try_push(value)) return true;
      if (closed_.load(std::memory_order_acquire)) return false;
      std::unique_lock<std::mutex> lock(wait_mutex_);
      waiters_.fetch_add(1);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      // Re-check after registering: a pop that freed a slot before seeing
      // our registration is now guaranteed visible.
      if (core_push(value)) {
        waiters_.fetch_sub(1);
        not_empty_.notify_all();
        return true;
      }
      if (closed_.load(std::memory_order_acquire)) {
        waiters_.fetch_sub(1);
        return false;
      }
      not_full_.wait(lock);
      waiters_.fetch_sub(1);
    }
  }

  /// Blocking pop; nullopt only when the queue is closed *and* drained.
  std::optional<T> pop() {
    for (;;) {
      if (std::optional<T> v = try_pop()) return v;
      if (closed_.load(std::memory_order_acquire)) {
        // Drain race: an item may have landed between try_pop and the
        // closed check.
        if (std::optional<T> v = try_pop()) return v;
        return std::nullopt;
      }
      std::unique_lock<std::mutex> lock(wait_mutex_);
      waiters_.fetch_add(1);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (std::optional<T> v = core_pop()) {
        waiters_.fetch_sub(1);
        not_full_.notify_all();
        return v;
      }
      if (closed_.load(std::memory_order_acquire)) {
        waiters_.fetch_sub(1);
        continue;  // drain once more at the top of the loop
      }
      not_empty_.wait(lock);
      waiters_.fetch_sub(1);
    }
  }

  /// Rejects all future pushes and wakes every blocked producer and
  /// consumer. Items already enqueued can still be popped.
  void close() {
    closed_.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lock(wait_mutex_);
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

 private:
  struct alignas(64) Slot {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  bool core_push(T& value) {
    if (closed_.load(std::memory_order_acquire)) return false;
    std::size_t pos = head_.load(std::memory_order_relaxed);
    Slot* slot;
    for (;;) {
      slot = &slots_[pos & (capacity_ - 1)];
      const std::size_t seq = slot->sequence.load(std::memory_order_acquire);
      const std::intptr_t dif =
          static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed))
          break;
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    slot->value = std::move(value);
    slot->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  std::optional<T> core_pop() {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    Slot* slot;
    for (;;) {
      slot = &slots_[pos & (capacity_ - 1)];
      const std::size_t seq = slot->sequence.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos + 1);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed))
          break;
      } else if (dif < 0) {
        return std::nullopt;  // empty
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    std::optional<T> out(std::move(slot->value));
    slot->sequence.store(pos + capacity_, std::memory_order_release);
    return out;
  }

  /// Called after a successful core operation *outside* wait_mutex_. Pair
  /// of the waiters' registration fence: if the probe reads 0, the
  /// waiter's post-registration re-check is guaranteed to observe this
  /// thread's slot update, so skipping the notification is safe. The
  /// common (uncontended) path therefore stays lock-free.
  void notify_unlocked(std::condition_variable* cv) {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_relaxed) == 0) return;
    std::lock_guard<std::mutex> lock(wait_mutex_);
    cv->notify_all();
  }

  std::size_t capacity_ = 0;
  std::unique_ptr<Slot[]> slots_;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::atomic<bool> closed_{false};

  std::mutex wait_mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::atomic<int> waiters_{0};
};

}  // namespace powder
