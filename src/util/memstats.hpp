#pragma once

// Process memory statistics for report diagnostics.

#include <cstdint>

namespace powder {

/// Peak resident set size of this process in bytes (VmHWM). Returns 0 on
/// platforms without /proc.
std::uint64_t peak_rss_bytes();

/// Current resident set size in bytes (VmRSS); the degradation ladder's
/// --mem-limit sensor. Returns 0 on platforms without /proc.
std::uint64_t current_rss_bytes();

}  // namespace powder
