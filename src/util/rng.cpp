#include "util/rng.hpp"

#include "util/check.hpp"

namespace powder {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // All-zero state is invalid for xoshiro; splitmix64 never yields four
  // zeros from any seed, but keep the guard cheap and explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  POWDER_DCHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::uniform() {
  return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::biased_word(double p) {
  if (p <= 0.0) return 0;
  if (p >= 1.0) return ~0ull;
  std::uint64_t w = 0;
  // Build the word by comparing 8 bits at a time via thresholding on bytes:
  // simple per-bit draw is clearer and still fast enough for our usage
  // (pattern generation is not the bottleneck; simulation is).
  for (int i = 0; i < 64; ++i)
    if (uniform() < p) w |= 1ull << i;
  return w;
}

}  // namespace powder
