#pragma once
// Shared resource budget for an optimization run: a wall-clock deadline and
// global proof-effort pools (ATPG backtracks, SAT conflicts).
//
// The optimizer owns one ResourceBudget and hands a pointer to every
// component that burns bounded effort. A proof engine asks for a per-call
// grant (its own per-call limit clamped to what is left in the pool),
// reports what it actually used afterwards, and aborts immediately when its
// pool is dry or the deadline has passed. Exhaustion is therefore always a
// clean, reported degradation — never a hang and never a hard error.

#include <chrono>

namespace powder {

class ResourceBudget {
 public:
  ResourceBudget() = default;

  /// Arms a wall-clock deadline `seconds` from now; negative disables.
  void set_deadline(double seconds);
  /// Caps the total PODEM backtracks across all checks; negative = unlimited.
  void set_atpg_backtrack_pool(long n) { atpg_pool_ = n < 0 ? -1 : n; }
  /// Caps the total SAT conflicts across all checks; negative = unlimited.
  void set_sat_conflict_pool(long n) { sat_pool_ = n < 0 ? -1 : n; }

  bool has_deadline() const { return has_deadline_; }
  bool expired() const;
  /// Seconds until the deadline (clamped at 0); +inf when no deadline.
  double remaining_seconds() const;

  /// Largest effort (<= `ask`) the caller may spend right now; 0 when the
  /// pool is dry. The caller reports actual use via the consume_* calls.
  long grant_atpg_backtracks(long ask) const { return grant(atpg_pool_, ask); }
  long grant_sat_conflicts(long ask) const { return grant(sat_pool_, ask); }
  void consume_atpg_backtracks(long used) { consume(&atpg_pool_, used); }
  void consume_sat_conflicts(long used) { consume(&sat_pool_, used); }

  bool atpg_pool_dry() const { return atpg_pool_ == 0; }
  bool sat_pool_dry() const { return sat_pool_ == 0; }
  /// True when neither proof engine can be paid for another call. Unlimited
  /// pools never drain, so this only triggers when both pools were set.
  bool proof_effort_exhausted() const {
    return atpg_pool_dry() && sat_pool_dry();
  }

 private:
  using Clock = std::chrono::steady_clock;

  static long grant(long pool, long ask) {
    if (pool < 0) return ask;
    return ask < pool ? ask : pool;
  }
  static void consume(long* pool, long used) {
    if (*pool < 0 || used <= 0) return;
    *pool = used < *pool ? *pool - used : 0;
  }

  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  long atpg_pool_ = -1;  // -1 = unlimited
  long sat_pool_ = -1;
};

}  // namespace powder
