#pragma once
// Shared resource budget for an optimization run: a wall-clock deadline and
// global proof-effort pools (ATPG backtracks, SAT conflicts).
//
// The optimizer owns one ResourceBudget and hands a pointer to every
// component that burns bounded effort. A proof engine asks for a per-call
// grant (its own per-call limit clamped to what is left in the pool),
// reports what it actually used afterwards, and aborts immediately when its
// pool is dry or the deadline has passed. Exhaustion is therefore always a
// clean, reported degradation — never a hang and never a hard error.
//
// The pools are atomic: POWDER's proof pipeline runs permissibility checks
// on several worker threads against the same budget, and a CAS loop in
// `consume` guarantees the pool is debited exactly once per unit of effort
// and never goes negative — concurrent workers cannot double-spend.

#include <atomic>
#include <chrono>

namespace powder {

class ResourceBudget {
 public:
  ResourceBudget() = default;
  ResourceBudget(const ResourceBudget&) = delete;
  ResourceBudget& operator=(const ResourceBudget&) = delete;

  /// Arms a wall-clock deadline `seconds` from now; negative disables.
  /// Not thread-safe — call before handing the budget to workers.
  void set_deadline(double seconds);
  /// Caps the total PODEM backtracks across all checks; negative = unlimited.
  void set_atpg_backtrack_pool(long n) {
    atpg_pool_.store(n < 0 ? -1 : n, std::memory_order_relaxed);
  }
  /// Caps the total SAT conflicts across all checks; negative = unlimited.
  void set_sat_conflict_pool(long n) {
    sat_pool_.store(n < 0 ? -1 : n, std::memory_order_relaxed);
  }

  bool has_deadline() const { return has_deadline_; }
  bool expired() const;
  /// Seconds until the deadline (clamped at 0); +inf when no deadline.
  double remaining_seconds() const;

  /// Largest effort (<= `ask`) the caller may spend right now; 0 when the
  /// pool is dry. The caller reports actual use via the consume_* calls.
  long grant_atpg_backtracks(long ask) const { return grant(atpg_pool_, ask); }
  long grant_sat_conflicts(long ask) const { return grant(sat_pool_, ask); }
  void consume_atpg_backtracks(long used) { consume(&atpg_pool_, used); }
  void consume_sat_conflicts(long used) { consume(&sat_pool_, used); }

  bool atpg_pool_dry() const {
    return atpg_pool_.load(std::memory_order_relaxed) == 0;
  }
  bool sat_pool_dry() const {
    return sat_pool_.load(std::memory_order_relaxed) == 0;
  }
  /// True when neither proof engine can be paid for another call. Unlimited
  /// pools never drain, so this only triggers when both pools were set.
  bool proof_effort_exhausted() const {
    return atpg_pool_dry() && sat_pool_dry();
  }

 private:
  using Clock = std::chrono::steady_clock;

  static long grant(const std::atomic<long>& pool, long ask) {
    const long p = pool.load(std::memory_order_relaxed);
    if (p < 0) return ask;
    return ask < p ? ask : p;
  }
  static void consume(std::atomic<long>* pool, long used) {
    if (used <= 0) return;
    long p = pool->load(std::memory_order_relaxed);
    while (p >= 0) {
      const long next = used < p ? p - used : 0;
      if (pool->compare_exchange_weak(p, next, std::memory_order_relaxed))
        return;
      // p reloaded by the failed CAS; re-check the unlimited sentinel.
    }
  }

  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  std::atomic<long> atpg_pool_{-1};  // -1 = unlimited
  std::atomic<long> sat_pool_{-1};
};

}  // namespace powder
