#pragma once
// Lightweight invariant checking used across the library.
//
// POWDER_CHECK is always on (it guards data-structure invariants whose
// violation would silently corrupt results); POWDER_DCHECK compiles out in
// NDEBUG builds and is used in inner loops.

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace powder {

/// Thrown when a POWDER_CHECK fails. Carrying the message in an exception
/// (rather than calling abort()) keeps the library testable.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace powder

#define POWDER_CHECK(expr)                                               \
  do {                                                                   \
    if (!(expr))                                                         \
      ::powder::detail::check_failed(#expr, __FILE__, __LINE__, "");     \
  } while (0)

#define POWDER_CHECK_MSG(expr, msg)                                      \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream powder_os_;                                     \
      powder_os_ << msg;                                                 \
      ::powder::detail::check_failed(#expr, __FILE__, __LINE__,          \
                                     powder_os_.str());                  \
    }                                                                    \
  } while (0)

#ifdef NDEBUG
#define POWDER_DCHECK(expr) ((void)0)
#else
#define POWDER_DCHECK(expr) POWDER_CHECK(expr)
#endif
