#pragma once
// Typed error taxonomy for the public API boundary (DESIGN.md §10.3).
//
// Everything powder can refuse to do falls into one of four categories:
//
//   kInput       — the caller handed us something unusable: malformed BLIF,
//                  options that fail validation, a resume log recorded for a
//                  different netlist or configuration.
//   kResource    — the process ran out of something it cannot degrade
//                  around (allocation failure outside a guarded path).
//   kProofEngine — a permissibility engine failed in a way that is neither
//                  "testable" nor "untestable" and exhausted its retries.
//   kIo          — the filesystem failed us: unreadable input, torn
//                  checkpoint, failed atomic rename.
//
// Error derives from CheckError so every existing catch site (and the
// invariant-checking machinery in util/check.hpp) keeps working; new code
// should catch powder::Error first and dispatch on category().

#include <string>

#include "util/check.hpp"

namespace powder {

enum class ErrorCategory : int {
  kInput = 0,
  kResource,
  kProofEngine,
  kIo,
};

inline const char* error_category_name(ErrorCategory c) {
  switch (c) {
    case ErrorCategory::kInput: return "input";
    case ErrorCategory::kResource: return "resource";
    case ErrorCategory::kProofEngine: return "proof-engine";
    case ErrorCategory::kIo: return "io";
  }
  return "unknown";
}

class Error : public CheckError {
 public:
  Error(ErrorCategory category, const std::string& what)
      : CheckError(std::string(error_category_name(category)) + " error: " +
                   what),
        category_(category) {}

  ErrorCategory category() const { return category_; }

  static Error input(const std::string& what) {
    return Error(ErrorCategory::kInput, what);
  }
  static Error resource(const std::string& what) {
    return Error(ErrorCategory::kResource, what);
  }
  static Error proof_engine(const std::string& what) {
    return Error(ErrorCategory::kProofEngine, what);
  }
  static Error io(const std::string& what) {
    return Error(ErrorCategory::kIo, what);
  }

 private:
  ErrorCategory category_;
};

}  // namespace powder
