#pragma once
// Atomic, fault-injectable file output (DESIGN.md §10.4).
//
// Every artifact powder writes — optimized BLIF, --report-json, --trace-out,
// --metrics-out, --audit-out, checkpoints — goes through this module so a
// crash mid-write can never leave a truncated file shadowing a good one.
// The protocol is the classic one: write to `<path>.tmp.<pid>` in the same
// directory, flush + fsync, then rename(2) over the destination. Readers
// either see the old complete file or the new complete file, never a torn
// one.
//
// Failures throw powder::Error with category kIo; the destination is left
// untouched and the temp file is removed. The chaos harness can force the
// failure paths via FaultInjector::Site::kOutputWrite.

#include <fstream>
#include <string>
#include <string_view>

namespace powder {

/// One-shot atomic write: `content` replaces `path` all-or-nothing.
/// Throws Error(kIo) on any failure (destination untouched).
void write_file_atomic(const std::string& path, std::string_view content);

/// Streaming variant for writers that want an ostream (trace JSON, audit
/// NDJSON, Prometheus text). The stream targets a temp file; nothing is
/// visible at `path` until commit() renames it into place. A destructed,
/// uncommitted writer removes the temp file — so a crash or an exception
/// unwinding past it leaves no debris and the old artifact intact.
class AtomicFileWriter {
 public:
  /// Opens the temp file; throws Error(kIo) if it cannot be created.
  explicit AtomicFileWriter(std::string path);
  ~AtomicFileWriter();
  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  std::ostream& stream() { return os_; }
  const std::string& path() const { return path_; }

  /// Flush + fsync + rename into place. Throws Error(kIo) on failure
  /// (temp file removed, destination untouched). Idempotent: a second
  /// call is a no-op.
  void commit();

 private:
  std::string path_;
  std::string tmp_path_;
  std::ofstream os_;
  bool committed_ = false;
};

}  // namespace powder
