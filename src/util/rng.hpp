#pragma once
// Deterministic, fast pseudo-random number generation.
//
// All stochastic parts of the library (pattern generation, synthetic
// benchmark construction, tie breaking) draw from this RNG so that every
// experiment is exactly reproducible from its seed.

#include <cstdint>

namespace powder {

/// xoshiro256** — small, fast, high-quality 64-bit generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-initializes the state from a single 64-bit seed (splitmix64 spread).
  void reseed(std::uint64_t seed);

  /// Uniform 64-bit word.
  std::uint64_t next64();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli draw with probability p of returning true.
  bool flip(double p) { return uniform() < p; }

  /// 64 independent Bernoulli(p) bits packed into one word.
  std::uint64_t biased_word(double p);

 private:
  std::uint64_t s_[4];
};

}  // namespace powder
