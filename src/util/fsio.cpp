#include "util/fsio.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#ifdef _WIN32
#include <io.h>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace powder {
namespace {

std::string tmp_name(const std::string& path) {
#ifdef _WIN32
  const long pid = 0;
#else
  const long pid = static_cast<long>(::getpid());
#endif
  return path + ".tmp." + std::to_string(pid);
}

/// Best-effort fsync of an already-written file by path. Returns false on
/// a reported sync failure (treated as a durability failure by callers).
bool sync_file(const std::string& path) {
#ifdef _WIN32
  (void)path;
  return true;
#else
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#endif
}

/// Best-effort fsync of the directory containing `path`, so the rename
/// itself is durable. Failure here is not fatal: the data file is synced
/// and the rename is atomic; only its persistence across power loss is at
/// stake, which is beyond what the tests (SIGKILL, not power-cut) require.
void sync_parent_dir(const std::string& path) {
#ifndef _WIN32
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  (void)::fsync(fd);
  ::close(fd);
#else
  (void)path;
#endif
}

}  // namespace

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)), tmp_path_(tmp_name(path_)) {
  os_.open(tmp_path_, std::ios::binary | std::ios::trunc);
  if (!os_.is_open())
    throw Error::io("cannot create temp file '" + tmp_path_ + "' for '" +
                    path_ + "'");
}

AtomicFileWriter::~AtomicFileWriter() {
  if (committed_) return;
  if (os_.is_open()) os_.close();
  std::remove(tmp_path_.c_str());
}

void AtomicFileWriter::commit() {
  if (committed_) return;
  os_.flush();
  const bool stream_ok = os_.good();
  os_.close();
  // Injected ENOSPC-style failure: the data never made it to disk whole.
  const bool injected = inject_fault(FaultInjector::Site::kOutputWrite);
  if (!stream_ok || injected || !sync_file(tmp_path_)) {
    std::remove(tmp_path_.c_str());
    throw Error::io("write to '" + path_ + "' failed" +
                    (injected ? " (injected fault)" : "") +
                    "; destination left untouched");
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp_path_.c_str());
    throw Error::io("rename '" + tmp_path_ + "' -> '" + path_ +
                    "' failed: " + std::strerror(err));
  }
  sync_parent_dir(path_);
  committed_ = true;
}

void write_file_atomic(const std::string& path, std::string_view content) {
  AtomicFileWriter writer(path);
  writer.stream().write(content.data(),
                        static_cast<std::streamsize>(content.size()));
  writer.commit();
}

}  // namespace powder
