#pragma once
// GateId-indexed side table for per-gate analysis caches.
//
// The raw `std::vector<double>` caches the analyses used to keep were easy
// to desynchronize from the netlist: adding a gate after an analysis was
// constructed left the vector short, and the subsequent `cache[g]` was an
// out-of-range read. GateMap makes the contract explicit:
//  * `operator[]` asserts the index is covered (POWDER_CHECK, always on);
//  * `ensure()` grows the table to cover newly added slots, filling them
//    with the map's designated default;
//  * entries are slot-stable across tombstone/revive cycles — a dead
//    gate's entry is retained (it is meaningless but addressable), so a
//    revived GateId finds its slot again without any re-indexing.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace powder {

template <typename T>
class GateMap {
 public:
  /// Mirrors GateId without pulling in netlist.hpp.
  using Index = std::uint32_t;

  GateMap() = default;
  explicit GateMap(std::size_t slots, T fill = T{})
      : fill_(fill), data_(slots, fill) {}

  /// Re-initializes every entry (and the ensure() fill value) to `value`.
  void assign(std::size_t slots, const T& value) {
    fill_ = value;
    data_.assign(slots, value);
  }

  /// Grows the table to cover `slots` entries, filling new ones with the
  /// map's fill value. Never shrinks (GateIds are stable).
  void ensure(std::size_t slots) {
    if (data_.size() < slots) data_.resize(slots, fill_);
  }

  bool covers(Index g) const { return g < data_.size(); }

  T& operator[](Index g) {
    POWDER_CHECK_MSG(covers(g), "GateMap index " << g << " beyond size "
                                                 << data_.size());
    return data_[g];
  }
  const T& operator[](Index g) const {
    POWDER_CHECK_MSG(covers(g), "GateMap index " << g << " beyond size "
                                                 << data_.size());
    return data_[g];
  }

  /// Tolerant read for probes that may race ahead of an ensure().
  T get_or(Index g, const T& fallback) const {
    return covers(g) ? data_[g] : fallback;
  }

  std::size_t size() const { return data_.size(); }
  void clear() { data_.clear(); }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

 private:
  T fill_{};
  std::vector<T> data_;
};

}  // namespace powder
