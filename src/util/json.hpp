// Minimal JSON DOM used by the observability tool surface: `powder diff`,
// the BENCH trajectory aggregator, and the trace_check validators all parse
// documents this codebase itself emitted, so the parser favours strictness
// and determinism over speed. Object member order is preserved (our writers
// are order-stable by contract, DESIGN.md §11.4) and duplicate keys keep the
// last value, matching how a streaming consumer would see them.
#ifndef POWDER_UTIL_JSON_HPP
#define POWDER_UTIL_JSON_HPP

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace powder {

/// One parsed JSON value. Null/bool/number/string are stored inline;
/// arrays and objects own their children.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  /// Object members in document order.
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Looks up an object member; nullptr when absent or not an object.
  /// Duplicate keys resolve to the last occurrence.
  const JsonValue* find(std::string_view key) const;

  /// Convenience: member that must be a finite number / string / array /
  /// object. Returns nullptr when the member is missing or the wrong kind.
  const JsonValue* find_number(std::string_view key) const;
  const JsonValue* find_string(std::string_view key) const;
  const JsonValue* find_array(std::string_view key) const;
  const JsonValue* find_object(std::string_view key) const;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool v);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array(std::vector<JsonValue> v);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses `text` as a single JSON document. On success returns the root and
/// clears `*error`; on failure returns nullptr and fills `*error` with a
/// one-line message carrying the byte offset. Trailing whitespace is allowed,
/// trailing garbage is not. Nesting is capped (64 levels) so hostile inputs
/// cannot blow the stack.
std::unique_ptr<JsonValue> json_parse(std::string_view text,
                                      std::string* error);

/// Serializes a string with JSON escaping (quotes included).
std::string json_quote(std::string_view s);

}  // namespace powder

#endif  // POWDER_UTIL_JSON_HPP
