#include "util/budget.hpp"

#include <limits>

namespace powder {

void ResourceBudget::set_deadline(double seconds) {
  if (seconds < 0.0) {
    has_deadline_ = false;
    return;
  }
  has_deadline_ = true;
  deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(seconds));
}

bool ResourceBudget::expired() const {
  return has_deadline_ && Clock::now() >= deadline_;
}

double ResourceBudget::remaining_seconds() const {
  if (!has_deadline_) return std::numeric_limits<double>::infinity();
  const double s =
      std::chrono::duration<double>(deadline_ - Clock::now()).count();
  return s > 0.0 ? s : 0.0;
}

}  // namespace powder
