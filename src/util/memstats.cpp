#include "util/memstats.hpp"

#ifdef __linux__
#include <cinttypes>
#include <cstdio>
#include <cstring>
#endif

namespace powder {

std::uint64_t peak_rss_bytes() {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%" SCNu64, &kb);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
#else
  return 0;
#endif
}

}  // namespace powder
