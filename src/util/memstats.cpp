#include "util/memstats.hpp"

#ifdef __linux__
#include <cinttypes>
#include <cstdio>
#include <cstring>
#endif

namespace powder {

#ifdef __linux__
namespace {

/// Reads one "VmXXX:  <kb> kB" field from /proc/self/status.
std::uint64_t proc_status_kb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      std::sscanf(line + key_len, "%" SCNu64, &kb);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

}  // namespace
#endif

std::uint64_t peak_rss_bytes() {
#ifdef __linux__
  return proc_status_kb("VmHWM:") * 1024;
#else
  return 0;
#endif
}

std::uint64_t current_rss_bytes() {
#ifdef __linux__
  return proc_status_kb("VmRSS:") * 1024;
#else
  return 0;
#endif
}

}  // namespace powder
