#include "flow/flow.hpp"

#include "aig/bool_network.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"

namespace powder {

Aig synthesize(const SopNetwork& sop, const FlowOptions& options) {
  POWDER_CHECK(sop.outputs.size() == sop.output_names.size());

  SopNetwork work = sop;
  for (int o = 0; o < work.num_outputs(); ++o) {
    Cover& cover = work.outputs[static_cast<std::size_t>(o)];
    POWDER_CHECK_MSG(cover.num_vars() == work.num_inputs(),
                     "cover arity mismatch in " << work.name);
    if (options.minimize_two_level &&
        cover.num_cubes() <= options.minimize_cube_limit) {
      if (work.has_dc())
        cover.minimize_with_dc(work.dc_sets[static_cast<std::size_t>(o)]);
      else
        cover.minimize();
    }
  }

  if (options.extract_shared_divisors) {
    BoolNetwork bn = BoolNetwork::from_sop(work);
    (void)extract_divisors(&bn);
    Aig aig = bn.to_aig(work.name);
    return aig;
  }

  Aig aig(work.name);
  std::vector<AigLit> vars;
  vars.reserve(work.input_names.size());
  for (const std::string& n : work.input_names)
    vars.push_back(aig.add_input(n));
  for (int o = 0; o < work.num_outputs(); ++o) {
    const AigLit f =
        aig.from_cover(work.outputs[static_cast<std::size_t>(o)], vars);
    aig.add_output(f, work.output_names[static_cast<std::size_t>(o)]);
  }
  return aig;
}

Netlist build_mapped_circuit(const SopNetwork& sop, const CellLibrary& library,
                             const FlowOptions& options) {
  const Aig aig = synthesize(sop, options);
  return map_aig(aig, library, options.mapper);
}

FlowResult build_and_optimize(const SopNetwork& sop, const CellLibrary& library,
                              const FlowOptions& flow_options,
                              const PowderOptions& powder_options) {
  TraceSession* const trace = powder_options.trace.trace;
  FlowResult result{[&] {
                      TraceSpan span(trace, "build_mapped_circuit", "flow");
                      return build_mapped_circuit(sop, library, flow_options);
                    }(),
                    {}};
  result.report = optimize(result.netlist, powder_options);
  return result;
}

}  // namespace powder
