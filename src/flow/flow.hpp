#pragma once
// End-to-end synthesis flow (paper Figure 1):
//   two-level description -> technology-independent optimization
//   (espresso-lite + algebraic factoring) -> AIG subject graph ->
//   technology mapping (power-driven) -> mapped netlist -> POWDER.
//
// This is the substitute for the paper's POSE front end: it produces
// initial circuits that are already optimized and mapped for low power, so
// that POWDER's reductions are measured as value-added on top.

#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "logic/sop_network.hpp"
#include "logic/cube.hpp"
#include "mapper/mapper.hpp"
#include "netlist/netlist.hpp"
#include "opt/powder.hpp"

namespace powder {

struct FlowOptions {
  /// Two-level minimization before factoring. Disable for very large
  /// covers (the espresso-lite expansion step is quadratic in cubes).
  bool minimize_two_level = true;
  /// Covers with more cubes than this skip full minimization and get the
  /// cheap containment/merge pass only.
  int minimize_cube_limit = 160;
  /// Multi-level shared-divisor extraction (SIS-style kernels) between
  /// minimization and factoring. Produces tighter initial circuits at
  /// some front-end cost; off by default so experiments stay comparable.
  bool extract_shared_divisors = false;
  MapperOptions mapper;
};

/// Technology-independent synthesis: minimize + factor + build the AIG.
Aig synthesize(const SopNetwork& sop, const FlowOptions& options = {});

/// Full flow to a mapped netlist.
Netlist build_mapped_circuit(const SopNetwork& sop, const CellLibrary& library,
                             const FlowOptions& options = {});

/// Outcome of the synthesize -> map -> POWDER pipeline.
struct FlowResult {
  Netlist netlist;
  PowderReport report;
};

/// Full flow including the POWDER post-mapping optimization, driven through
/// the stable powder::optimize entry point. Configure the optimization with
/// PowderOptions::builder() (e.g. .threads(8).delay_limit_factor(1.0)).
FlowResult build_and_optimize(const SopNetwork& sop, const CellLibrary& library,
                              const FlowOptions& flow_options = {},
                              const PowderOptions& powder_options = {});

}  // namespace powder
