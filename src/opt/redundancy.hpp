#pragma once
// ATPG-based redundancy removal (the classic special case of the
// substitution framework: replacing a connection by a constant).
//
// For every branch (gate input pin) the checker asks whether the stuck-at
// fault on that pin is testable; an untestable pin can be tied to the
// stuck value without changing any output (Cheng/Entrena [1] in the
// paper's references). Tying a pin to a controlling constant lets the
// consuming gate be simplified, which exposes further redundancies, so the
// pass iterates to a fixed point.
//
// This is not part of the POWDER loop itself — it is the cleanup companion
// used to strengthen initial circuits and as an ablation baseline.

#include "atpg/atpg.hpp"
#include "netlist/netlist.hpp"

namespace powder {

struct RedundancyRemovalOptions {
  AtpgOptions atpg;
  int max_rounds = 8;
};

struct RedundancyRemovalReport {
  int pins_tied = 0;
  int gates_removed = 0;
  double area_removed = 0.0;
  int rounds = 0;
};

/// Removes stuck-at-redundant connections from `netlist` in place.
RedundancyRemovalReport remove_redundancies(
    Netlist* netlist, const RedundancyRemovalOptions& options = {});

}  // namespace powder
