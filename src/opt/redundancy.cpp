#include "opt/redundancy.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace powder {

namespace {

/// Returns the driver of a constant cell gate's value, or -1 if `g` is not
/// a constant gate.
int constant_value_of(const Netlist& nl, GateId g) {
  if (nl.kind(g) != GateKind::kCell) return -1;
  const Cell& c = nl.cell_of(g);
  if (!c.is_constant()) return -1;
  return c.function.is_constant(true) ? 1 : 0;
}

GateId make_constant(Netlist* nl, bool value) {
  const CellLibrary& lib = nl->library();
  const CellId cid = value ? lib.const1() : lib.const0();
  POWDER_CHECK_MSG(cid != kInvalidCell, "library lacks constant cells");
  return nl->add_gate(cid, {});
}

/// Propagates constant inputs through gates: a gate with constant fanins
/// is replaced by the cofactored function (a constant, a wire/inverter, or
/// a smaller library cell). Returns number of gates simplified.
int propagate_constants(Netlist* nl) {
  const CellLibrary& lib = nl->library();
  int simplified = 0;
  // Iterate in topological order so upstream simplifications feed
  // downstream ones within a single pass. Explicit copy: the loop body
  // mutates the netlist, which invalidates the cached order.
  const std::vector<GateId> topo = nl->topo_order();
  for (GateId g : topo) {
    if (!nl->alive(g) || nl->kind(g) != GateKind::kCell) continue;
    if (nl->fanouts(g).empty()) continue;
    if (nl->cell_of(g).is_constant()) continue;

    // Cofactor the cell function by every constant input. Snapshot the
    // fanins: make_constant/add_gate below may reshape the pin arena.
    TruthTable f = nl->cell_of(g).function;
    const std::vector<GateId> fanins(nl->fanins(g).begin(),
                                     nl->fanins(g).end());
    std::vector<GateId> live_fanins;
    bool any_const = false;
    for (int pin = 0; pin < static_cast<int>(fanins.size()); ++pin) {
      const GateId fi = fanins[static_cast<std::size_t>(pin)];
      const int cv = constant_value_of(*nl, fi);
      if (cv >= 0) {
        f = f.cofactor(pin, cv == 1);
        any_const = true;
      } else {
        live_fanins.push_back(fi);
      }
    }
    if (!any_const) continue;

    // Compress the function onto the live inputs (drop vacuous variables;
    // constant-pin variables are vacuous after cofactoring).
    TruthTable compact(static_cast<int>(live_fanins.size()));
    {
      // Build index mapping live pin order -> original variable.
      std::vector<int> live_vars;
      for (int pin = 0; pin < static_cast<int>(fanins.size()); ++pin)
        if (constant_value_of(*nl, fanins[static_cast<std::size_t>(pin)]) < 0)
          live_vars.push_back(pin);
      for (std::uint64_t m = 0; m < compact.num_minterms_capacity(); ++m) {
        std::uint64_t full = 0;
        for (std::size_t i = 0; i < live_vars.size(); ++i)
          if ((m >> i) & 1) full |= 1ull << live_vars[i];
        compact.set_bit(m, f.bit(full));
      }
    }

    GateId replacement = kNullGate;
    if (compact.num_vars() == 0 || compact.is_constant(false) ||
        compact.is_constant(true)) {
      replacement = make_constant(nl, compact.num_vars() == 0
                                          ? f.bit(0)
                                          : compact.is_constant(true));
    } else if (compact.num_vars() == 1) {
      const bool inverting = compact.bit(0);  // f(0)=1 => inverter
      if (inverting) {
        replacement = nl->add_gate(lib.inverter(), {live_fanins[0]});
      } else {
        replacement = live_fanins[0];  // wire
      }
    } else {
      // Try an exact library match over the live inputs.
      const auto matches = lib.match_function(compact);
      if (matches.empty()) continue;  // keep the gate as is
      const auto& m = matches.front();
      std::vector<GateId> wired;
      for (int pin = 0; pin < lib.cell(m.cell).num_inputs(); ++pin)
        wired.push_back(live_fanins[static_cast<std::size_t>(
            m.perm[static_cast<std::size_t>(pin)])]);
      replacement = nl->add_gate(m.cell, wired);
    }
    nl->replace_all_fanouts(g, replacement);
    nl->remove_gate_recursive(g);
    ++simplified;
  }
  nl->sweep_dead();
  return simplified;
}

}  // namespace

RedundancyRemovalReport remove_redundancies(
    Netlist* netlist, const RedundancyRemovalOptions& options) {
  POWDER_CHECK(netlist != nullptr);
  RedundancyRemovalReport report;
  const double initial_area = netlist->total_area();
  const int initial_cells = netlist->num_cells();

  for (int round = 0; round < options.max_rounds; ++round) {
    ++report.rounds;
    AtpgChecker atpg(*netlist, options.atpg);
    int tied_this_round = 0;

    // Snapshot the branches up front; the netlist mutates as we go.
    struct Branch {
      GateId driver;
      FanoutRef ref;
    };
    std::vector<Branch> branches;
    for (GateId g = 0; g < netlist->num_slots(); ++g) {
      if (!netlist->alive(g) || netlist->kind(g) == GateKind::kOutput)
        continue;
      if (constant_value_of(*netlist, g) >= 0) continue;
      for (const FanoutRef& br : netlist->fanouts(g))
        if (netlist->kind(br.gate) == GateKind::kCell)
          branches.push_back(Branch{g, br});
    }

    for (const Branch& br : branches) {
      // Still wired as snapshotted?
      if (!netlist->alive(br.driver) || !netlist->alive(br.ref.gate))
        continue;
      if (br.ref.pin >= netlist->num_fanins(br.ref.gate) ||
          netlist->fanin(br.ref.gate, br.ref.pin) != br.driver)
        continue;
      for (int value = 0; value < 2; ++value) {
        const ReplacementSite site{br.driver, br.ref};
        if (atpg.check_replacement(site,
                                   ReplacementFunction::constant(value)) !=
            AtpgResult::kUntestable)
          continue;
        const GateId cst = make_constant(netlist, value);
        netlist->set_fanin(br.ref.gate, br.ref.pin, cst);
        // The old driver may have just lost its last fanout.
        if (netlist->kind(br.driver) == GateKind::kCell &&
            netlist->fanouts(br.driver).empty())
          netlist->remove_gate_recursive(br.driver);
        ++tied_this_round;
        break;
      }
    }

    report.pins_tied += tied_this_round;
    const int simplified = propagate_constants(netlist);
    if (tied_this_round == 0 && simplified == 0) break;
  }

  report.gates_removed = initial_cells - netlist->num_cells();
  report.area_removed = initial_area - netlist->total_area();
  return report;
}

}  // namespace powder
