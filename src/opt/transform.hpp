#pragma once
// The generalized resubstitution transform IR.
//
// A Transform is one proposed structural edit: a target *site* (a stem, or
// a single fanout branch of a stem), an ordered *divisor set* (the existing
// signals the replacement reads, in pin order), and a *replacement
// function* — a constant, a (possibly inverted) single divisor, or a
// library cell instantiated over the divisors. The four paper classes are
// instances of this IR:
//
//   OS2(a,b)      stem site,   1 divisor,  kSignal replacement
//   IS2(a,b)      branch site, 1 divisor,  kSignal replacement
//   OS3(a,b,c)    stem site,   2 divisors, kTwoInput replacement
//   IS3(a,b,c)    branch site, 2 divisors, kTwoInput replacement
//
// and the framework adds three more:
//
//   OSK/ISK       stem/branch site, k >= 3 divisors, kCell replacement
//                 (a new k-input library gate over the divisor set)
//   FUNCRED       stem site, 1 divisor, kSignal replacement proposed by
//                 the functional-reduction pre-pass (signature-equal
//                 signals merged before the greedy loop starts)
//
// Everything downstream of harvesting — the journal, the ATPG/SAT proof
// dispatch, the windowed optimizer, the WAL codec, and the audit log —
// consumes this IR: they iterate `num_divisors()`/`divisor(i)` and switch
// on `rep.kind`, never on the class tag. The class tag survives only as
// provenance for per-class economics (reports, metrics, audit records).

#include <optional>

#include "atpg/atpg.hpp"
#include "netlist/netlist.hpp"

namespace powder {

/// Provenance tag: which harvest pass proposed the transform. The first
/// four values are the paper's classes and are wire-stable — they are
/// persisted in WAL frames and report JSON, so new classes append only.
enum class ResubClass : std::uint8_t {
  kOS2,      ///< stem := existing signal (paper Definition 1)
  kIS2,      ///< branch := existing signal (paper Definition 2)
  kOS3,      ///< stem := new 2-input gate
  kIS3,      ///< branch := new 2-input gate
  kOSK,      ///< stem := new k-input gate, k >= 3
  kISK,      ///< branch := new k-input gate, k >= 3
  kFuncRed,  ///< stem := equivalent signal (functional-reduction pre-pass)
};

inline constexpr int kNumResubClasses = 7;

const char* resub_class_name(ResubClass c);

/// Backward-compatible alias: the paper-era name for the class tag.
using SubstClass = ResubClass;

struct Transform {
  ResubClass cls = ResubClass::kOS2;
  GateId target = kNullGate;            ///< substituted stem signal
  std::optional<FanoutRef> branch;      ///< set for input substitutions
  ReplacementFunction rep;              ///< what replaces the signal
  CellId new_cell = kInvalidCell;       ///< library cell for OS3/IS3/OSK/ISK
  // Pin order note: `new_cell` is instantiated with the ordered divisor
  // set as fanins ({rep.b, rep.c} for kTwoInput, rep.divisors for kCell).

  // Pre-selection gains (paper §3.3/§3.5), refreshed before every use.
  double pg_a = 0.0;  ///< >= 0, removed capacitance
  double pg_b = 0.0;  ///< <= 0, added load on the substituting signal(s)
  double pg_c = 0.0;  ///< TFO re-estimation; filled for the shortlist only

  double preselect_gain() const { return pg_a + pg_b; }
  double total_gain() const { return pg_a + pg_b + pg_c; }

  ReplacementSite site() const { return ReplacementSite{target, branch}; }

  /// Ordered divisor set of the replacement (empty for constants).
  int num_divisors() const { return rep.num_sources(); }
  GateId divisor(int i) const { return rep.source(i); }
};

/// Backward-compatible alias: the paper-era name for the IR.
using CandidateSub = Transform;

const char* subst_class_name(SubstClass c);

}  // namespace powder
