// Run comparison: the verdict engine behind `powder diff` and the
// BENCH_*.json trajectory aggregator behind `powder trajectory`.
//
// `diff_reports` consumes two --report-json documents (and optionally the
// matching audit logs and attribution dumps), compares power / area /
// runtime / per-class economics against configurable thresholds, and
// produces a machine-readable verdict document plus a boolean regression
// flag the CLI maps to its exit code. It lives in the library (not the
// tool) so tests can drive it without spawning processes.
#ifndef POWDER_OPT_REPORT_DIFF_HPP
#define POWDER_OPT_REPORT_DIFF_HPP

#include <string>
#include <utility>
#include <vector>

namespace powder {

/// Document version of the `powder diff` verdict JSON (DESIGN.md §11.4
/// stability rules apply).
inline constexpr int kDiffSchemaVersion = 1;

/// Document version of BENCH_trajectory.json.
inline constexpr int kTrajectorySchemaVersion = 1;

struct DiffThresholds {
  /// Candidate regresses when its final power exceeds the baseline's by
  /// more than this percentage.
  double power_percent = 0.5;
  /// Same, for final area.
  double area_percent = 2.0;
  /// Same, for cpu_seconds — but runtime is noisy, so it only counts when
  /// check_runtime is set (the CLI sets it when --runtime-threshold is
  /// passed explicitly).
  double runtime_percent = 50.0;
  bool check_runtime = false;
};

struct DiffResult {
  bool ok = false;         ///< inputs parsed; verdict_json is valid
  bool regressed = false;  ///< any enabled threshold tripped
  std::string error;       ///< set when !ok
  std::string verdict_json;
};

/// Compares two report documents. `*_audit` / `*_attribution` may be empty
/// strings (sections are omitted from the verdict); when provided they add
/// an audit decision histogram and a per-class attribution-gain comparison.
DiffResult diff_reports(const std::string& base_json,
                        const std::string& cand_json,
                        const DiffThresholds& thresholds,
                        const std::string& base_audit = {},
                        const std::string& cand_audit = {},
                        const std::string& base_attribution = {},
                        const std::string& cand_attribution = {});

/// Folds the BENCH_*.json family into one trajectory document: every
/// numeric/boolean/string leaf of every file, flattened to dotted paths,
/// in input order. Unparseable files land in an "errors" array instead of
/// failing the fold (bench artifacts appear incrementally during a ctest
/// pass). `files` is (name, raw JSON text).
std::string fold_bench_trajectory(
    const std::vector<std::pair<std::string, std::string>>& files);

}  // namespace powder

#endif  // POWDER_OPT_REPORT_DIFF_HPP
