#include "opt/powder.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <thread>
#include <unordered_set>

#include "bdd/netlist_bdd.hpp"
#include "opt/funcred.hpp"
#include "opt/journal.hpp"
#include "power/attribution.hpp"
#include "power/power.hpp"
#include "session/checkpoint.hpp"
#include "session/degradation.hpp"
#include "trace/audit.hpp"
#include "trace/metrics.hpp"
#include "trace/progress.hpp"
#include "trace/trace.hpp"
#include "util/budget.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/memstats.hpp"
#include "util/fault_injection.hpp"
#include "util/mpmc_queue.hpp"
#include "util/thread_pool.hpp"
#include "window/extract.hpp"
#include "window/partition.hpp"
#include "window/window_optimizer.hpp"

namespace powder {

namespace {

/// Fault injection (Site::kStaleCandidate): rewrites `sub` into a
/// structurally valid signal substitution whose sampled signature *differs*
/// from the target's — exactly what a stale candidate surviving a buggy
/// revalidation would look like. Returns false when no such corruption
/// exists at this site.
bool corrupt_candidate(const Netlist& nl, const Simulator& sim,
                       CandidateSub* sub) {
  const GateId entry =
      sub->branch.has_value() ? sub->branch->gate : sub->target;
  const auto target_words = sim.value(sub->target);
  for (GateId g = 0; g < nl.num_slots(); ++g) {
    if (!nl.alive(g) || nl.kind(g) == GateKind::kOutput) continue;
    if (g == sub->target || g == entry) continue;
    const auto words = sim.value(g);
    bool differs = false;
    for (std::size_t w = 0; w < words.size(); ++w)
      if (words[w] != target_words[w]) {
        differs = true;
        break;
      }
    if (!differs) continue;
    CandidateSub trial = *sub;
    trial.cls = sub->branch.has_value() ? SubstClass::kIS2 : SubstClass::kOS2;
    trial.rep = ReplacementFunction::signal(g, false);
    trial.new_cell = kInvalidCell;
    if (!substitution_still_valid(nl, trial)) continue;
    *sub = trial;
    return true;
  }
  return false;
}

/// One permissibility check with the configured engine (hybrid escalates an
/// aborted PODEM run to the SAT miter). Used identically by the commit
/// thread and the proof workers, so a verdict depends only on the netlist
/// state and the candidate — never on which thread produced it.
AtpgResult prove_one(AtpgChecker& atpg, SatChecker& sat, ProofEngine engine,
                     const CandidateSub& cand) {
  switch (engine) {
    case ProofEngine::kPodem:
      return atpg.check_replacement(cand.site(), cand.rep);
    case ProofEngine::kSat:
      return sat.check_replacement(cand.site(), cand.rep);
    case ProofEngine::kHybrid: {
      const AtpgResult r = atpg.check_replacement(cand.site(), cand.rep);
      if (r != AtpgResult::kAborted) return r;
      return sat.check_replacement(cand.site(), cand.rep);
    }
  }
  return AtpgResult::kAborted;
}

/// prove_one with transient-failure isolation: an engine that *throws*
/// (rather than returning a verdict) is retried up to `max_retries` times
/// with capped exponential backoff, then the candidate is treated as
/// kAborted — a sound rejection, never an unproven acceptance. Shared by
/// the commit thread and the proof workers; the chaos site kProofTransient
/// exercises the retry path deterministically.
AtpgResult prove_with_retry(AtpgChecker& atpg, SatChecker& sat,
                            ProofEngine engine, const CandidateSub& cand,
                            int max_retries, Counter* retries) {
  for (int attempt = 0;; ++attempt) {
    try {
      if (inject_fault(FaultInjector::Site::kProofTransient))
        throw Error::proof_engine("injected transient proof failure");
      return prove_one(atpg, sat, engine, cand);
    } catch (const CheckError&) {
      if (attempt >= max_retries) return AtpgResult::kAborted;
      if (retries != nullptr) retries->inc();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(1LL << std::min(attempt, 3)));
    }
  }
}

/// Total order over a candidate's proof obligation (site + replacement):
/// the cache key of the speculative proof pipeline.
struct ProofKey {
  std::array<long long, 12> v{};
  bool operator<(const ProofKey& o) const { return v < o.v; }
};

const char* engine_name(ProofEngine e) {
  switch (e) {
    case ProofEngine::kPodem: return "podem";
    case ProofEngine::kSat: return "sat";
    case ProofEngine::kHybrid: return "hybrid";
  }
  return "?";
}

const char* verdict_name(AtpgResult r) {
  switch (r) {
    case AtpgResult::kTestFound: return "test_found";
    case AtpgResult::kUntestable: return "untestable";
    case AtpgResult::kAborted: return "aborted";
  }
  return "?";
}

const char* rep_kind_name(ReplacementFunction::Kind k) {
  switch (k) {
    case ReplacementFunction::Kind::kConstant: return "constant";
    case ReplacementFunction::Kind::kSignal: return "signal";
    case ReplacementFunction::Kind::kTwoInput: return "two_input";
    case ReplacementFunction::Kind::kCell: return "cell";
  }
  return "?";
}

ProofKey make_key(const CandidateSub& cand) {
  long long tt = 0;
  if (cand.rep.kind == ReplacementFunction::Kind::kTwoInput)
    for (int m = 0; m < 4; ++m)
      if (cand.rep.two_input_fn.bit(m)) tt |= 1ll << m;
  if (cand.rep.kind == ReplacementFunction::Kind::kCell) {
    // Fold the ordered divisor set and the k-var function into one FNV
    // digest; b/c stay kNullGate for kCell, so the digest disambiguates.
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t x) {
      for (int i = 0; i < 8; ++i) {
        h ^= (x >> (8 * i)) & 0xFF;
        h *= 1099511628211ull;
      }
    };
    for (const GateId d : cand.rep.divisors) mix(d);
    const std::uint64_t minterms = cand.rep.two_input_fn.num_vars() > 0
        ? cand.rep.two_input_fn.num_minterms_capacity() : 0;
    for (std::uint64_t m = 0; m < minterms; ++m)
      mix(cand.rep.two_input_fn.bit(m) ? 1 : 0);
    tt = static_cast<long long>(h);
  }
  ProofKey k;
  k.v = {static_cast<long long>(cand.cls),
         static_cast<long long>(cand.target),
         cand.branch ? static_cast<long long>(cand.branch->gate) : -1,
         cand.branch ? static_cast<long long>(cand.branch->pin) : -1,
         static_cast<long long>(cand.rep.kind),
         cand.rep.constant_value ? 1 : 0,
         static_cast<long long>(cand.rep.b),
         cand.rep.invert_b ? 1 : 0,
         static_cast<long long>(cand.rep.c),
         cand.rep.invert_c ? 1 : 0,
         tt,
         static_cast<long long>(cand.new_cell)};
  return k;
}

/// Speculative proof pipeline: N workers pop candidate proofs from a
/// bounded MPMC queue, prove them against the *current* netlist under a
/// shared lock, and cache the verdict. The single commit thread enqueues
/// shortlist candidates, looks verdicts up before proving inline, and
/// brackets every netlist mutation with begin/end_mutation — which bumps
/// the version (invalidating queued jobs), clears the cache, and takes the
/// lock exclusively so no worker reads a half-mutated netlist. Verdicts are
/// pure functions of (netlist state, candidate), so a cache hit equals the
/// proof the serial code would have run — results stay bit-identical.
class ProofPipeline {
 public:
  ProofPipeline(const Netlist& netlist, const AtpgOptions& atpg_options,
                const SatCheckerOptions& sat_options, ProofEngine engine,
                int num_workers, TraceSession* trace = nullptr,
                int proof_retries = 0, double watchdog_seconds = -1.0,
                Counter* retries_counter = nullptr,
                Counter* watchdog_counter = nullptr)
      : netlist_(&netlist),
        engine_(engine),
        queue_(256),
        trace_(trace),
        proof_retries_(proof_retries),
        watchdog_seconds_(watchdog_seconds),
        retries_counter_(retries_counter),
        watchdog_counter_(watchdog_counter) {
    workers_.reserve(static_cast<std::size_t>(num_workers));
    for (int i = 0; i < num_workers; ++i)
      workers_.emplace_back([this, atpg_options, sat_options] {
        worker_loop(atpg_options, sat_options);
      });
  }

  ~ProofPipeline() { shutdown(); }

  void shutdown() {
    if (shut_down_) return;
    shut_down_ = true;
    queue_.close();
    for (std::thread& t : workers_) t.join();
  }

  /// Hands a candidate's proof to the workers unless it is already proved,
  /// already in flight, or the queue is full (speculation is best-effort).
  void speculate(const CandidateSub& cand) {
    const ProofKey key = make_key(cand);
    {
      std::lock_guard<std::mutex> lock(results_mutex_);
      if (results_.count(key) != 0 || in_flight_.count(key) != 0) return;
      in_flight_.insert(key);
    }
    ProofJob job{version_.load(std::memory_order_relaxed), cand};
    if (!queue_.try_push(std::move(job))) {
      std::lock_guard<std::mutex> lock(results_mutex_);
      in_flight_.erase(key);
      return;
    }
    ++jobs_enqueued_;
  }

  /// Cached verdict for `cand` (waiting for a worker that is mid-proof on
  /// it); nullopt when the pipeline never got to this candidate. The wait
  /// is bounded by the session watchdog: a worker that stalls past the
  /// timeout is declared stuck and the obligation is requeued on the commit
  /// thread (the straggler's late result is version-checked and dropped, so
  /// a stuck worker costs latency, never correctness).
  std::optional<AtpgResult> lookup(const CandidateSub& cand) {
    const ProofKey key = make_key(cand);
    std::unique_lock<std::mutex> lock(results_mutex_);
    const auto not_in_flight = [&] { return in_flight_.count(key) == 0; };
    if (watchdog_seconds_ > 0.0) {
      if (!results_cv_.wait_for(
              lock, std::chrono::duration<double>(watchdog_seconds_),
              not_in_flight)) {
        if (watchdog_counter_ != nullptr) watchdog_counter_->inc();
        return std::nullopt;
      }
    } else {
      results_cv_.wait(lock, not_in_flight);
    }
    const auto it = results_.find(key);
    if (it == results_.end()) return std::nullopt;
    ++speculative_hits_;
    return it->second;
  }

  /// Must bracket every netlist mutation (apply or rollback).
  void begin_mutation() {
    version_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(results_mutex_);
      results_.clear();
    }
    netlist_mutex_.lock();
  }
  void end_mutation() { netlist_mutex_.unlock(); }

  long jobs_enqueued() const { return jobs_enqueued_; }
  long speculative_hits() const { return speculative_hits_; }
  long stale_dropped() const {
    return stale_dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct ProofJob {
    std::uint64_t version = 0;
    CandidateSub cand;
  };

  void worker_loop(AtpgOptions atpg_options, SatCheckerOptions sat_options) {
    // Worker-owned engines: the checkers keep per-check scratch state, so
    // each worker needs its own pair (they share the atomic budget).
    AtpgChecker atpg(*netlist_, atpg_options);
    SatChecker sat(*netlist_, sat_options);
    while (std::optional<ProofJob> job = queue_.pop()) {
      const ProofKey key = make_key(job->cand);
      // Injected stall (watchdog bait): the worker wedges *outside* the
      // netlist lock, so only this job's consumers wait, never a commit.
      if (inject_fault(FaultInjector::Site::kProofStall))
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      AtpgResult verdict{};
      bool proved = false;
      {
        std::shared_lock<std::shared_mutex> lock(netlist_mutex_);
        // A mutation bumps the version *before* it can take the lock, so a
        // current version here guarantees the netlist matches the job.
        if (job->version == version_.load(std::memory_order_relaxed)) {
          TraceSpan span(trace_, "proof_job", "proof");
          verdict = prove_with_retry(atpg, sat, engine_, job->cand,
                                     proof_retries_, retries_counter_);
          proved = true;
          span.arg("target", static_cast<long long>(job->cand.target));
          span.arg("verdict", static_cast<long long>(verdict));
        }
      }
      {
        std::lock_guard<std::mutex> lock(results_mutex_);
        in_flight_.erase(key);
        if (proved &&
            job->version == version_.load(std::memory_order_relaxed)) {
          results_[key] = verdict;
        } else {
          stale_dropped_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      results_cv_.notify_all();
    }
  }

  const Netlist* netlist_;
  ProofEngine engine_;
  MpmcQueue<ProofJob> queue_;
  TraceSession* trace_;
  int proof_retries_ = 0;
  double watchdog_seconds_ = -1.0;
  Counter* retries_counter_ = nullptr;
  Counter* watchdog_counter_ = nullptr;
  std::vector<std::thread> workers_;
  bool shut_down_ = false;

  std::shared_mutex netlist_mutex_;
  std::atomic<std::uint64_t> version_{0};

  std::mutex results_mutex_;
  std::condition_variable results_cv_;
  std::map<ProofKey, AtpgResult> results_;
  std::set<ProofKey> in_flight_;

  long jobs_enqueued_ = 0;     // commit thread only
  long speculative_hits_ = 0;  // commit thread only
  std::atomic<long> stale_dropped_{0};
};

/// RAII mutation bracket; no-op without a pipeline (threads == 1).
class MutationScope {
 public:
  explicit MutationScope(ProofPipeline* pipeline) : pipeline_(pipeline) {
    if (pipeline_ != nullptr) pipeline_->begin_mutation();
  }
  ~MutationScope() {
    if (pipeline_ != nullptr) pipeline_->end_mutation();
  }
  MutationScope(const MutationScope&) = delete;
  MutationScope& operator=(const MutationScope&) = delete;

 private:
  ProofPipeline* pipeline_;
};

}  // namespace

PowderOptimizer::PowderOptimizer(Netlist* netlist, PowderOptions options)
    : netlist_(netlist), options_(std::move(options)) {
  POWDER_CHECK(netlist_ != nullptr);
  // Malformed options are the caller's problem: surface them as the typed
  // kInput category at the API boundary (Error derives from CheckError, so
  // legacy catch sites keep working).
  try {
    validate_options();
  } catch (const Error&) {
    throw;
  } catch (const CheckError& e) {
    throw Error::input(e.what());
  }
}

void PowderOptimizer::validate_options() const {
  const PowderOptions& o = options_;
  POWDER_CHECK_MSG(o.num_patterns > 0,
                   "PowderOptions.num_patterns must be positive, got "
                       << o.num_patterns);
  if (!o.pi_probs.empty()) {
    // Latch outputs are pseudo-PIs whose probabilities come from the
    // reset-state fixed point, not from the user: the user supplies one
    // entry per *primary* input only.
    const int primary = netlist_->num_inputs() - netlist_->num_latches();
    POWDER_CHECK_MSG(
        static_cast<int>(o.pi_probs.size()) == primary,
        "PowderOptions.pi_probs has " << o.pi_probs.size()
                                      << " entries but the netlist has "
                                      << primary << " primary inputs");
    for (std::size_t i = 0; i < o.pi_probs.size(); ++i)
      POWDER_CHECK_MSG(std::isfinite(o.pi_probs[i]) && o.pi_probs[i] >= 0.0 &&
                           o.pi_probs[i] <= 1.0,
                       "PowderOptions.pi_probs[" << i << "] = " << o.pi_probs[i]
                                                 << " is outside [0, 1]");
  }
  POWDER_CHECK_MSG(o.shortlist > 0,
                   "PowderOptions.shortlist must be positive, got "
                       << o.shortlist);
  POWDER_CHECK_MSG(o.repeat > 0,
                   "PowderOptions.repeat must be positive, got " << o.repeat);
  POWDER_CHECK_MSG(o.max_outer_iterations > 0,
                   "PowderOptions.max_outer_iterations must be positive, got "
                       << o.max_outer_iterations);
  POWDER_CHECK_MSG(std::isfinite(o.min_gain),
                   "PowderOptions.min_gain must be finite");
  POWDER_CHECK_MSG(o.proof.atpg.backtrack_limit >= 0,
                   "PowderOptions.proof.atpg.backtrack_limit must be non-negative, "
                   "got " << o.proof.atpg.backtrack_limit);
  POWDER_CHECK_MSG(o.threads >= 0,
                   "PowderOptions.threads must be non-negative, got "
                       << o.threads);
  POWDER_CHECK_MSG(o.session.mem_limit_bytes >= 0,
                   "PowderOptions.session.mem_limit_bytes must be "
                   "non-negative, got " << o.session.mem_limit_bytes);
  POWDER_CHECK_MSG(o.session.proof_retries >= 0,
                   "PowderOptions.session.proof_retries must be "
                   "non-negative, got " << o.session.proof_retries);
  POWDER_CHECK_MSG(o.window.max_gates >= 2,
                   "PowderOptions.window.max_gates must be at least 2, got "
                       << o.window.max_gates);
  POWDER_CHECK_MSG(o.window.overlap >= 0 && o.window.overlap < o.window.max_gates,
                   "PowderOptions.window.overlap must lie in [0, max_gates), "
                   "got " << o.window.overlap);
  POWDER_CHECK_MSG(o.window.rerun_limit >= 0,
                   "PowderOptions.window.rerun_limit must be non-negative, "
                   "got " << o.window.rerun_limit);
  POWDER_CHECK_MSG(o.session.podem_only_fraction >= 0.0 &&
                       o.session.podem_only_fraction <= 1.0 &&
                       o.session.signature_only_fraction >= 0.0 &&
                       o.session.signature_only_fraction <=
                           o.session.podem_only_fraction,
                   "PowderOptions.session degradation fractions must satisfy "
                   "0 <= signature_only_fraction <= podem_only_fraction <= 1");
  POWDER_CHECK_MSG(o.candidates.resub.max_divisors >= 2,
                   "PowderOptions.candidates.resub.max_divisors must be at "
                   "least 2 (the paper's pair classes), got "
                       << o.candidates.resub.max_divisors);
  POWDER_CHECK_MSG(o.candidates.resub.ksub_b_pool > 0,
                   "PowderOptions.candidates.resub.ksub_b_pool must be "
                   "positive, got " << o.candidates.resub.ksub_b_pool);
  POWDER_CHECK_MSG(o.candidates.resub.max_k_per_target > 0,
                   "PowderOptions.candidates.resub.max_k_per_target must be "
                   "positive, got " << o.candidates.resub.max_k_per_target);
  POWDER_CHECK_MSG(o.glitch.num_vector_pairs > 0,
                   "PowderOptions.glitch.num_vector_pairs must be positive, "
                   "got " << o.glitch.num_vector_pairs);
  POWDER_CHECK_MSG(o.glitch.max_events_per_pair >= 0,
                   "PowderOptions.glitch.max_events_per_pair must be "
                   "non-negative (0 = automatic), got "
                       << o.glitch.max_events_per_pair);
}

bool PowderOptimizer::violates_delay(const CandidateSub& sub, double limit,
                                     IncrementalTiming& timing,
                                     PowderReport::Diagnostics& diag) const {
  if (!std::isfinite(limit)) return false;
  // Apply on a scratch copy — exact and side-effect free. The copy starts
  // with no observers, so the seeded incremental STA attaches fresh and
  // only re-propagates the substitution's dirty region; the early-cutoff
  // propagation is bit-identical to a full analyze_timing on the mutated
  // scratch.
  Netlist scratch = *netlist_;
  IncrementalTiming scratch_ta(scratch, timing);
  (void)apply_substitution(scratch, sub);
  const bool violates = scratch_ta.circuit_delay() > limit + 1e-9;
  diag.sta_incremental_visits +=
      static_cast<long>(scratch_ta.nodes_visited());
  diag.sta_full_equiv_visits +=
      static_cast<long>(scratch_ta.full_equiv_visits());
  return violates;
}

PowderReport PowderOptimizer::run() {
  const auto t_start = std::chrono::steady_clock::now();
  PowderReport report;

  TraceSession* const trace = options_.trace.trace;
  AuditLog* const audit = options_.trace.audit;
  ProgressStream* const prog = options_.trace.progress;
  PowerAttribution* const attr = options_.trace.attribution;
  // The attribution ledger indexes classes without depending on the
  // optimizer headers; the two class sets must stay in lockstep.
  static_assert(kAttributionClasses == kNumResubClasses,
                "PowerAttribution class table out of sync with ResubClass");
  TraceSpan run_span(trace, "optimize", "powder");

  int threads = options_.threads;
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 0 ? static_cast<int>(hw) : 1;
  }
  report.diagnostics.threads_used = threads;
  run_span.arg("threads", threads);
  const bool windowed = options_.window.mode == WindowMode::kWindowed;
  run_span.arg("windowed", windowed ? 1 : 0);

  // The registry is the primary store for the run's decision counters; with
  // no user-supplied sink they land in a run-local registry instead, so the
  // loop below has exactly one accounting path. The Diagnostics struct is
  // filled from a delta snapshot at end of run (the compat shim that keeps
  // --report-json keys stable), and deltas are against the counter values at
  // entry so a registry shared across several runs stays monotonic without
  // polluting any single run's report.
  MetricsRegistry local_registry;
  MetricsRegistry* const reg = options_.trace.metrics != nullptr
                                   ? options_.trace.metrics
                                   : &local_registry;
  struct Meter {
    Counter* c;
    long long base;
    long long delta() const { return c->value() - base; }
  };
  auto meter = [&](const char* name, const char* help) {
    Counter* c = reg->counter(name, help);
    return Meter{c, c->value()};
  };
  const Meter m_iterations =
      meter("powder_outer_iterations_total", "Outer harvest iterations run");
  const Meter m_harvested = meter("powder_candidates_harvested_total",
                                  "Candidates returned by the harvests");
  const Meter m_stale = meter("powder_rejected_stale_total",
                              "Candidates dropped as structurally stale");
  const Meter m_delay = meter("powder_rejected_delay_total",
                              "Candidates rejected by the delay check");
  const Meter m_presim = meter(
      "powder_rejected_presim_total",
      "Candidates refuted by the independent-pattern pre-simulation");
  const Meter m_proof_rej = meter("powder_rejected_proof_total",
                                  "Candidates refuted by the proof engines");
  const Meter m_applied = meter("powder_substitutions_applied_total",
                                "Substitutions committed to the netlist");
  const Meter m_apply_fail = meter("powder_apply_failures_total",
                                   "Applies rejected by the validity check");
  const Meter m_guard_rb = meter("powder_guard_rollbacks_total",
                                 "Commits undone by the signature guard");
  const Meter m_final_rb = meter("powder_final_rollbacks_total",
                                 "Commits undone by the end-of-run check");
  const Meter m_inline = meter("powder_inline_proofs_total",
                               "Proofs run inline on the commit thread");
  const Meter m_retries = meter("powder_proof_retries_total",
                                "Transient proof failures retried");
  const Meter m_watchdog = meter("powder_watchdog_requeues_total",
                                 "Stuck proof jobs requeued inline");
  const Meter m_degraded =
      meter("powder_rejected_degraded_total",
            "Candidates rejected unproven by the degradation ladder");
  const Meter m_windows = meter("powder_windows_built_total",
                                "Windows extracted, including conflict reruns");
  const Meter m_window_gates =
      meter("powder_window_gates_total",
            "Sum of gate counts over all extracted windows");
  const Meter m_window_commits =
      meter("powder_window_commits_total",
            "Local window commits merged into the parent netlist");
  const Meter m_window_conflicts =
      meter("powder_window_boundary_conflicts_total",
            "Windows skipped at merge because their support was touched");
  const Meter m_window_reruns =
      meter("powder_window_reruns_total",
            "Serial window re-optimizations after boundary conflicts");
  const Meter m_truncated =
      meter("powder_harvest_truncated_total",
            "Candidates dropped because a harvest hit max_candidates");
  const Meter m_funcred =
      meter("powder_funcred_merges_total",
            "Signals merged away by the functional-reduction pre-pass");
  // Per-class harvest/proof accounting behind diagnostics.resub. Names are
  // derived from the class table so the registry export and the report's
  // by_class array can never disagree on the class set.
  std::array<Meter, kNumResubClasses> m_cls_harvested{};
  std::array<Meter, kNumResubClasses> m_cls_proved{};
  for (int i = 0; i < kNumResubClasses; ++i) {
    const std::string cls = resub_class_name(static_cast<ResubClass>(i));
    m_cls_harvested[static_cast<std::size_t>(i)] =
        meter(("powder_resub_harvested_" + cls + "_total").c_str(),
              "Candidates harvested for one resubstitution class");
    m_cls_proved[static_cast<std::size_t>(i)] =
        meter(("powder_resub_proved_" + cls + "_total").c_str(),
              "Candidates proved permissible for one resubstitution class");
  }

  ResourceBudget budget;
  budget.set_deadline(options_.budget.deadline_seconds);
  budget.set_atpg_backtrack_pool(options_.budget.atpg_backtrack_pool);
  budget.set_sat_conflict_pool(options_.budget.sat_conflict_pool);

  // ---- session durability (DESIGN.md §10) --------------------------------
  // Resume first (the WAL validates against the pristine netlist), then the
  // new checkpoint — so `--resume F --checkpoint-out F` reads the old log
  // completely before truncating the path for the new one.
  SessionResume resume;
  if (!options_.session.resume_from.empty())
    resume.load(options_.session.resume_from, *netlist_, options_);
  SessionRecorder recorder(reg, audit);
  if (!options_.session.checkpoint_out.empty()) {
    recorder.open(options_.session.checkpoint_out, *netlist_, options_);
    recorder.set_after_frame_hook(options_.session.after_checkpoint_frame);
  }
  DegradationLadder ladder(options_.session, options_.budget.deadline_seconds,
                           options_.proof.engine, reg, audit);
  ladder.set_progress(prog);

  // Shared pool for the data-parallel kernels (word-sharded simulation and
  // the three-pass candidate harvest). Proof workers are separate dedicated
  // threads — they block on the queue, not on pool work.
  ThreadPool pool(threads - 1);

  MetricsRegistry* const component_metrics = options_.trace.metrics;
  // Sequential circuits: latch outputs are pseudo-PIs whose stimulus
  // probability comes from the reset-state fixed point, spliced in between
  // the user's primary-input probabilities. Combinational netlists pass
  // options_.pi_probs through untouched (bit-identical legacy path).
  const std::vector<double> sim_probs =
      expand_pi_probs(*netlist_, options_.pi_probs);
  Simulator sim(*netlist_, options_.num_patterns, sim_probs, options_.seed);
  sim.set_thread_pool(&pool);
  sim.set_trace(trace, component_metrics);
  PowerEstimator est(&sim);
  // The model the greedy loop optimizes against: the zero-delay estimator
  // itself, or the event-driven TimedPowerModel layered over it when
  // --power-model=timed. All PG arithmetic below goes through `model`.
  std::optional<TimedPowerModel> timed_model;
  if (options_.power_model == PowerModelKind::kTimed) {
    GlitchOptions gopt = options_.glitch;
    if (gopt.stimulus.prob.empty() && !sim_probs.empty())
      gopt.stimulus.prob = sim_probs;
    timed_model.emplace(&est, std::move(gopt));
  }
  PowerModel& model = timed_model.has_value()
                          ? static_cast<PowerModel&>(*timed_model)
                          : static_cast<PowerModel&>(est);
  // Independent pattern set used as a cheap second opinion before the
  // expensive permissibility proof: a candidate that already fails on
  // fresh patterns is rejected without running PODEM/SAT at all. The same
  // simulator backs the post-commit signature guard below.
  Simulator verify_sim(*netlist_, options_.num_patterns, sim_probs,
                       options_.seed ^ 0x5EC0DD5EEDull);
  verify_sim.set_thread_pool(&pool);
  verify_sim.set_trace(trace, component_metrics);
  // Incremental STA over the main netlist: stays coherent through the delta
  // bus and seeds the per-candidate scratch analyses of violates_delay.
  IncrementalTiming timing(*netlist_);
  timing.set_trace(trace, component_metrics);

  const std::uint64_t deltas_before = netlist_->deltas_published();
  const std::uint64_t notifications_before =
      netlist_->observer_notifications();

  report.initial_power = model.total_power();
  report.initial_area = netlist_->total_area();
  report.initial_delay = timing.circuit_delay();
  report.delay_limit = options_.delay_limit_factor < 0.0
                           ? std::numeric_limits<double>::infinity()
                           : report.initial_delay *
                                 options_.delay_limit_factor;

  // Attribution binds here — after the model's first full estimate, before
  // any mutation — so its "before" sweep reproduces initial_power exactly.
  if (attr != nullptr) attr->begin_run(netlist_, &model);
  if (prog != nullptr) {
    long live_cells = 0;
    for (GateId g = 0; g < netlist_->num_slots(); ++g)
      if (netlist_->alive(g) && netlist_->kind(g) == GateKind::kCell)
        ++live_cells;
    prog->run_start(netlist_->name(), live_cells, netlist_->num_inputs(),
                    netlist_->num_outputs(), threads, windowed,
                    power_model_name(model.kind()));
  }

  // Pristine copy for the end-of-run miter (the strong guard level).
  std::optional<Netlist> pristine;
  if (options_.guard.final_equivalence_check) pristine.emplace(*netlist_);

  // Primary-output signature snapshot on the independent pattern set: the
  // PI stimulus is frozen, so a permissible substitution can never change
  // any PO word. Any mismatch after a commit is a proven miscompare.
  const std::vector<GateId> po_gates = netlist_->outputs();
  std::vector<std::uint64_t> po_snapshot;
  for (GateId o : po_gates) {
    const auto words = verify_sim.value(o);
    po_snapshot.insert(po_snapshot.end(), words.begin(), words.end());
  }
  auto po_signatures_ok = [&]() {
    std::size_t k = 0;
    for (GateId o : po_gates)
      for (std::uint64_t w : verify_sim.value(o))
        if (w != po_snapshot[k++]) return false;
    return true;
  };

  AtpgOptions atpg_options = options_.proof.atpg;
  atpg_options.budget = &budget;
  atpg_options.trace = trace;
  atpg_options.metrics = component_metrics;
  SatCheckerOptions sat_options = options_.proof.sat;
  sat_options.budget = &budget;
  sat_options.trace = trace;
  sat_options.metrics = component_metrics;
  AtpgChecker atpg(*netlist_, atpg_options);
  SatChecker sat(*netlist_, sat_options);

  // Speculative proof workers (threads - 1 of them); null in serial mode,
  // which keeps the exact single-threaded code path. The copied checker
  // options carry the trace/metrics sinks into every worker's own engines.
  // Windowed mode spends its threads on the window fan-out instead, and its
  // results must not depend on the thread count — no speculation there.
  std::optional<ProofPipeline> pipeline;
  if (threads > 1 && !windowed)
    pipeline.emplace(*netlist_, atpg_options, sat_options,
                     options_.proof.engine, threads - 1, trace,
                     options_.session.proof_retries,
                     options_.session.watchdog_seconds, m_retries.c,
                     m_watchdog.c);
  ProofPipeline* pipe = pipeline.has_value() ? &*pipeline : nullptr;

  SubstJournal journal(netlist_);
  journal.set_trace(trace, component_metrics);
  // Per-commit accounting, aligned with the journal, so an end-of-run
  // rollback can also undo the report's class statistics.
  struct CommitRecord {
    SubstClass cls;
    double power_delta;
    double area_delta;
  };
  std::vector<CommitRecord> commit_log;

  // One resync for every situation — commit, rollback, even a rollback
  // that threw half-way: the published deltas describe the mutations that
  // actually executed, so draining them brings every cache in line with
  // whatever state the netlist is in.
  auto resync = [&]() {
    model.refresh();  // refreshes the base estimator first, then (timed
                      // model only) re-runs the event-driven estimate
    verify_sim.refresh();
  };

  // The ladder replaces the old binary expired/exhausted stop: the same
  // sensors now step down through kPodemOnly / kSignatureOnly before
  // reaching kStop, and every step is published to the audit log/metrics.
  auto stop_requested = [&]() {
    if (ladder.evaluate(budget) != DegradationLevel::kStop) return false;
    switch (ladder.stop_reason()) {
      case StopReason::kDeadline:
        report.diagnostics.deadline_hit = true;
        break;
      case StopReason::kProofBudget:
        report.diagnostics.budget_exhausted = true;
        break;
      case StopReason::kMemLimit:
        report.diagnostics.mem_limit_hit = true;
        break;
      case StopReason::kNone:
        break;
    }
    return true;
  };

  // Persistent across iterations: the signature index refreshes only the
  // epoch-dirty gates on re-harvest. Reseeding per iteration keeps the RNG
  // stream identical to a freshly constructed finder. Windowed mode
  // harvests inside each window's own finder, so the parent-level index
  // (an O(N) build plus a delta-bus subscription) is skipped entirely.
  std::optional<CandidateFinder> finder;
  if (!windowed) {
    finder.emplace(*netlist_, model, options_.candidates, options_.seed,
                   &pool);
    finder->set_trace(trace);
  }

  // Decision audit: one NDJSON record per candidate the loop below settles.
  // `audit_window` is -1 except while merging one window's commits, so a
  // consumer can separate window-local decisions from global ones.
  long long audit_seq = 0;
  int audit_iteration = 0;
  int audit_window = -1;
  auto audit_decision = [&](const CandidateSub& c, const char* decision,
                            bool pg_c_known = false,
                            const char* proof_engine = nullptr,
                            const char* proof_verdict = nullptr,
                            double proof_us = -1.0) {
    if (audit == nullptr) return;
    AuditRecord r;
    r.seq = audit_seq++;
    r.iteration = audit_iteration;
    r.window = audit_window;
    r.epoch = netlist_->epoch();
    r.cls = subst_class_name(c.cls);
    r.target = static_cast<long long>(c.target);
    r.target_name = netlist_->gate_name(c.target);
    if (c.branch.has_value()) {
      r.branch_sink = static_cast<long long>(c.branch->gate);
      r.branch_pin = c.branch->pin;
    }
    r.rep_kind = rep_kind_name(c.rep.kind);
    if (c.rep.kind == ReplacementFunction::Kind::kCell) {
      r.rep_divisors.reserve(c.rep.divisors.size());
      for (const GateId d : c.rep.divisors)
        r.rep_divisors.push_back(static_cast<long long>(d));
    } else {
      if (c.rep.kind != ReplacementFunction::Kind::kConstant)
        r.rep_b = static_cast<long long>(c.rep.b);
      if (c.rep.kind == ReplacementFunction::Kind::kTwoInput)
        r.rep_c = static_cast<long long>(c.rep.c);
    }
    r.pg_a = c.pg_a;
    r.pg_b = c.pg_b;
    r.pg_c = c.pg_c;
    r.pg_c_known = pg_c_known;
    r.proof_engine = proof_engine;
    r.proof_verdict = proof_verdict;
    r.proof_us = proof_us;
    r.decision = decision;
    audit->write(r);
  };

  // Progress tick: called at iteration boundaries and after commits. The
  // null-sink path is one branch; with a sink attached, checkpoint frames
  // are published as they land and heartbeats are rate-limited inside the
  // stream (first tick always emits, so every run has >= 1 heartbeat).
  long long prog_ckpt_frames = 0;
  auto progress_tick = [&]() {
    if (prog == nullptr) return;
    if (recorder.frames() > prog_ckpt_frames) {
      prog_ckpt_frames = recorder.frames();
      prog->checkpoint(prog_ckpt_frames);
    }
    if (!prog->heartbeat_due()) return;
    ProgressStream::Stats s;
    s.iteration = audit_iteration;
    s.max_iterations = options_.max_outer_iterations;
    s.power = model.total_power();
    s.applied = m_applied.delta();
    s.harvested = m_harvested.delta();
    s.proofs = m_inline.delta();
    prog->heartbeat(s);
  };
  progress_tick();

  bool progress = true;
  bool stopped = false;

  // ---- functional-reduction pre-pass (DESIGN.md §12) ---------------------
  // Runs on the whole netlist before either main loop — including windowed
  // mode, where merging equivalent stems globally is both sound (each merge
  // carries its own permissibility proof and guard check) and more
  // effective than any per-window sweep could be (equivalent signals
  // rarely land in the same window). Merges are journaled and recorded as
  // kPrepass WAL frames, so crash/resume replays them in lockstep before
  // touching the commit cursor.
  if (options_.candidates.resub.funcred) {
    TraceSpan fr_span(trace, "funcred", "powder");
    if (prog != nullptr) prog->phase(0, "funcred");
    double fr_power = model.total_power();
    double fr_area = netlist_->total_area();
    FuncredHooks hooks;
    hooks.prove = [&](const CandidateSub& cand) {
      // Resume oracle: a recorded merge was proved by the original run; an
      // unrecorded pair reaching this stage was rejected by it (the pass is
      // deterministic, so the nomination order replays identically).
      if (resume.prepass_active()) return resume.prepass_matches(cand);
      const AtpgResult verdict =
          prove_with_retry(atpg, sat, options_.proof.engine, cand,
                           options_.session.proof_retries, m_retries.c);
      m_inline.c->inc();
      if (verdict != AtpgResult::kUntestable) {
        m_proof_rej.c->inc();
        audit_decision(cand, "rejected_proof", false,
                       engine_name(options_.proof.engine),
                       verdict_name(verdict));
        return false;
      }
      return true;
    };
    hooks.resync = resync;
    if (options_.guard.signature_check) hooks.guard_ok = po_signatures_ok;
    hooks.on_commit = [&](const FuncredCommit& c) {
      if (resume.prepass_active()) {
        if (!same_applied(resume.prepass_current().applied, c.applied))
          throw Error::input(
              "resume diverged: a replayed pre-pass merge produced a "
              "different netlist delta than the checkpoint recorded");
        resume.prepass_advance();
      }
      recorder.record_prepass(c.round, c.ordinal, c.cand, c.applied);
      const double p = model.total_power();
      const double a = netlist_->total_area();
      ClassStats& cls =
          report.by_class[static_cast<std::size_t>(ResubClass::kFuncRed)];
      ++cls.applied;
      cls.power_delta += fr_power - p;
      cls.area_delta += a - fr_area;
      commit_log.push_back(CommitRecord{ResubClass::kFuncRed, fr_power - p,
                                        a - fr_area});
      if (attr != nullptr)
        attr->record_commit(static_cast<int>(ResubClass::kFuncRed), -1,
                            fr_power - p);
      m_applied.c->inc();
      audit_decision(c.cand, "accepted", false, "funcred", "untestable");
      if (prog != nullptr)
        prog->commit(0, subst_class_name(ResubClass::kFuncRed), -1,
                     fr_power - p, p);
      progress_tick();
      fr_power = p;
      fr_area = a;
    };
    const FuncredStats fr =
        functional_reduction(*netlist_, sim, journal, hooks, nullptr);
    if (resume.prepass_active())
      throw Error::input(
          "resume diverged: the checkpoint records more pre-pass merges "
          "than the pre-pass replayed");
    m_funcred.c->inc(fr.merged);
    m_guard_rb.c->inc(fr.guard_rollbacks);
    constexpr auto kFr = static_cast<std::size_t>(ResubClass::kFuncRed);
    m_cls_harvested[kFr].c->inc(fr.pairs_tested);
    m_cls_proved[kFr].c->inc(fr.pairs_tested - fr.proof_rejected);
    if (options_.check_invariants) netlist_->check_consistency();
    fr_span.arg("merged", fr.merged);
    fr_span.arg("rounds", fr.rounds);
    fr_span.arg("pairs", fr.pairs_tested);
  }

  if (windowed) {
    // ---- windowed mode (DESIGN.md §11) ----------------------------------
    // Partition the parent along its topo order, optimize every window
    // independently (thread fan-out happens here; each local run is a pure
    // function of its extraction), then merge strictly serially in a
    // deterministic order — results are bit-identical at any thread count.
    int next_window_id = 0;
    std::unordered_set<GateId> touched;

    // Per-window WAL oracle views for windowed resume: each local loop
    // replays proof verdicts from the commits recorded under its window
    // id, while the merge below still verifies against the global cursor.
    auto window_records = [&](int id) {
      std::vector<const WalCommit*> recs;
      if (resume.loaded())
        for (const WalCommit& c : resume.commits())
          if (c.window == static_cast<std::uint32_t>(id)) recs.push_back(&c);
      return recs;
    };

    // Merges one optimized window into the parent. Returns false when the
    // window must be re-run: a boundary conflict, or a mid-window failure
    // (apply/delay/guard) that strands the commits building on it.
    long long merged_total = 0;
    auto merge_window = [&](WindowExtraction& ex, WindowResult& res,
                            bool check_conflicts) -> bool {
      // Decisions taken while merging this window carry its id in the
      // audit stream; restored on every exit path.
      struct WindowIdScope {
        int* slot;
        int saved;
        WindowIdScope(int* s, int v) : slot(s), saved(*s) { *slot = v; }
        ~WindowIdScope() { *slot = saved; }
      } audit_window_scope(&audit_window, ex.id);
      // Fold the local decision counters serially — deterministic totals.
      m_harvested.c->inc(res.stats.harvested);
      m_stale.c->inc(res.stats.stale);
      m_presim.c->inc(res.stats.presim_rejected);
      m_proof_rej.c->inc(res.stats.proof_rejected);
      m_guard_rb.c->inc(res.stats.guard_rollbacks);
      m_inline.c->inc(res.stats.inline_proofs);
      m_truncated.c->inc(res.stats.truncated);
      for (int i = 0; i < kNumResubClasses; ++i) {
        const auto k = static_cast<std::size_t>(i);
        m_cls_harvested[k].c->inc(res.stats.harvested_by_class[k]);
        m_cls_proved[k].c->inc(res.stats.proved_by_class[k]);
      }
      if (res.commits.empty()) return true;
      if (check_conflicts) {
        for (const GateId g : ex.support)
          if (touched.count(g) != 0) {
            m_window_conflicts.c->inc();
            if (audit != nullptr) {
              AuditEvent e;
              e.event = "window_conflict";
              e.reason = "boundary_overlap";
              e.value = ex.id;
              audit->write_event(e);
            }
            return false;
          }
      }
      auto mark = [&](GateId g) {
        if (g != kNullGate) touched.insert(g);
      };
      std::vector<GateId>& to_parent = ex.to_parent;
      auto map_gate = [&](GateId local, GateId* parent) {
        if (local >= to_parent.size() || to_parent[local] == kNullGate)
          return false;
        *parent = to_parent[local];
        return true;
      };
      for (const WindowCommit& wc : res.commits) {
        CandidateSub cand = wc.cand;
        bool mapped = map_gate(wc.cand.target, &cand.target);
        if (mapped && wc.cand.branch.has_value())
          mapped = map_gate(wc.cand.branch->gate, &cand.branch->gate);
        for (int i = 0; mapped && i < wc.cand.rep.num_sources(); ++i)
          mapped = map_gate(wc.cand.rep.source(i), &cand.rep.source_ref(i));
        if (!mapped) return false;  // an earlier commit of this window failed

        // Delay check against the parent's real arrival times (the local
        // loop has none). The rest of the window builds on this commit —
        // drop it and let a re-run rediscover what still fits.
        bool delay_violated;
        {
          TraceSpan delay_span(trace, "delay_check", "sta");
          delay_violated = violates_delay(cand, report.delay_limit, timing,
                                          report.diagnostics);
          delay_span.arg("violated", delay_violated ? 1 : 0);
        }
        if (delay_violated) {
          m_delay.c->inc();
          audit_decision(cand, "rejected_delay", true);
          return false;
        }

        const double power_before = model.total_power();
        const double area_before = netlist_->total_area();
        const bool active = resume.active();
        AppliedSub applied;
        try {
          applied = journal.apply(cand);
        } catch (const CheckError&) {
          if (active && resume.matches(cand))
            throw Error::input(
                "resume diverged: a checkpointed window substitution failed "
                "to re-apply (wrong input netlist or tampered log?)");
          m_apply_fail.c->inc();
          audit_decision(cand, "apply_failed", true);
          return false;
        }
        resync();
        if (options_.check_invariants) netlist_->check_consistency();

        if (options_.guard.signature_check && !po_signatures_ok()) {
          if (active && resume.matches(cand))
            throw Error::input(
                "resume diverged: the signature guard rejected a window "
                "commit the checkpoint recorded as accepted");
          m_guard_rb.c->inc();
          audit_decision(cand, "guard_rollback", true);
          try {
            journal.rollback_last();
            resync();
          } catch (const CheckError&) {
            resync();
            stopped = true;
            return true;  // stopping — no re-run
          }
          return false;
        }

        const double power_after = model.total_power();
        ClassStats& cls = report.by_class[static_cast<std::size_t>(cand.cls)];
        ++cls.applied;
        cls.power_delta += power_before - power_after;
        cls.area_delta += netlist_->total_area() - area_before;
        commit_log.push_back(CommitRecord{cand.cls, power_before - power_after,
                                          netlist_->total_area() -
                                              area_before});
        if (attr != nullptr)
          attr->record_commit(static_cast<int>(cand.cls), ex.id,
                              power_before - power_after);
        if (prog != nullptr)
          prog->commit(audit_iteration, subst_class_name(cand.cls), ex.id,
                       power_before - power_after, power_after);
        m_applied.c->inc();
        m_window_commits.c->inc();

        // Extend the local->parent map with the inserted gate so later
        // commits of this window that reference it keep mapping.
        if (wc.applied.new_gate != kNullGate &&
            applied.new_gate != kNullGate) {
          if (wc.applied.new_gate >= to_parent.size())
            to_parent.resize(wc.applied.new_gate + 1, kNullGate);
          to_parent[wc.applied.new_gate] = applied.new_gate;
        }

        // Every parent-side edit endpoint joins the touched set; later
        // windows whose support intersects it are conflict-skipped. The
        // parent MFFC sweep can exceed the local one (it reaches cones the
        // window clipped), so the endpoints come from the parent delta.
        mark(cand.target);
        for (const GateId g : applied.removed_gates) mark(g);
        for (const auto& fl : applied.removed_fanins)
          for (const GateId g : fl) mark(g);
        for (const RewiredPin& p : applied.rewired_pins) {
          mark(p.sink);
          mark(p.old_driver);
          mark(p.new_driver);
        }
        for (const ResizedCell& r : applied.resized_cells) mark(r.gate);
        for (const GateId g : applied.changed_roots) mark(g);
        if (applied.new_gate != kNullGate) {
          mark(applied.new_gate);
          for (const GateId g : netlist_->fanins(applied.new_gate)) mark(g);
        }

        if (active) {
          // Merged commits drain the global cursor in lockstep: the merge
          // order is deterministic, so record i of the WAL is exactly the
          // i-th commit merged here.
          const WalCommit& rec = resume.current();
          if (rec.window != static_cast<std::uint32_t>(ex.id) ||
              !same_candidate(rec.cand, cand) ||
              !same_applied(rec.applied, applied))
            throw Error::input(
                "resume diverged: merged window commits no longer match the "
                "checkpoint");
          resume.advance();
        }
        recorder.record_commit(audit_iteration,
                               static_cast<int>(merged_total), cand, applied,
                               static_cast<std::uint32_t>(ex.id));
        audit_decision(cand, "accepted", true, "window", "untestable");
        ++merged_total;
        progress = true;
      }
      return true;
    };

    for (int outer = 0;
         progress && !stopped && outer < options_.max_outer_iterations;
         ++outer) {
      m_iterations.c->inc();
      audit_iteration = outer + 1;
      TraceSpan iter_span(trace, "iteration", "powder");
      iter_span.arg("outer", outer + 1);
      progress = false;
      if (stop_requested()) break;
      progress_tick();
      const long long merged_before = merged_total;

      // Partition and extract serially from the current parent state.
      std::vector<WindowExtraction> extractions;
      {
        TraceSpan part_span(trace, "window_partition", "window");
        if (prog != nullptr)
          prog->phase(audit_iteration, "window_partition");
        const auto plans = partition_windows(*netlist_, options_.window);
        extractions.reserve(plans.size());
        for (const auto& plan : plans) {
          extractions.push_back(
              extract_window(*netlist_, model, plan, next_window_id++));
          m_windows.c->inc();
          m_window_gates.c->inc(
              static_cast<long long>(extractions.back().gates.size()));
          if (prog != nullptr)
            prog->window_event(
                audit_iteration, extractions.back().id, "extracted",
                static_cast<long long>(extractions.back().gates.size()));
        }
        part_span.arg("windows", static_cast<long long>(extractions.size()));
      }
      if (extractions.empty()) break;

      std::vector<std::vector<const WalCommit*>> oracles(extractions.size());
      for (std::size_t i = 0; i < extractions.size(); ++i)
        oracles[i] = window_records(extractions[i].id);
      std::vector<WindowResult> results(extractions.size());
      pool.for_shards(static_cast<int>(extractions.size()),
                      [&](int shard, int) {
                        WindowRunOptions wo;
                        wo.base = &options_;
                        wo.seed =
                            window_seed(options_.seed, extractions[shard].id);
                        wo.budget = &budget;
                        wo.trace = trace;
                        wo.replay = &oracles[shard];
                        results[shard] =
                            optimize_window(extractions[shard], wo);
                      });

      touched.clear();
      std::vector<std::size_t> rerun_queue;
      {
        TraceSpan merge_span(trace, "window_merge", "window");
        if (prog != nullptr)
          prog->phase(audit_iteration, "window_merge",
                      static_cast<long long>(extractions.size()), "windows");
        const auto order = window_merge_order(extractions.size(),
                                              options_.window.order_seed);
        for (const std::size_t idx : order) {
          if (stopped || stop_requested()) {
            stopped = true;
            break;
          }
          if (!merge_window(extractions[idx], results[idx],
                            /*check_conflicts=*/true)) {
            rerun_queue.push_back(idx);
            if (prog != nullptr)
              prog->window_event(audit_iteration, extractions[idx].id,
                                 "conflict");
          } else if (prog != nullptr) {
            prog->window_event(
                audit_iteration, extractions[idx].id, "merged", -1,
                static_cast<long long>(results[idx].commits.size()));
          }
          progress_tick();
        }
        merge_span.arg("merged", merged_total - merged_before);
        merge_span.arg("conflicts",
                       static_cast<long long>(rerun_queue.size()));
      }

      // Conflicted windows re-run serially against the now-mutated parent:
      // re-extract the surviving gates, optimize inline, merge immediately
      // (nothing intervenes, so no conflict check is needed).
      for (int round = 0; round < options_.window.rerun_limit &&
                          !rerun_queue.empty() && !stopped;
           ++round) {
        std::vector<std::size_t> next_queue;
        for (const std::size_t idx : rerun_queue) {
          if (stopped || stop_requested()) {
            stopped = true;
            break;
          }
          std::vector<std::uint8_t> member(netlist_->num_slots(), 0);
          for (const GateId g : extractions[idx].gates)
            if (netlist_->alive(g) && netlist_->kind(g) == GateKind::kCell)
              member[g] = 1;
          std::vector<GateId> alive_gates;
          for (const GateId g : netlist_->topo_order())
            if (member[g]) alive_gates.push_back(g);
          if (alive_gates.empty()) continue;
          m_window_reruns.c->inc();
          WindowExtraction ex =
              extract_window(*netlist_, model, alive_gates, next_window_id++);
          m_windows.c->inc();
          m_window_gates.c->inc(static_cast<long long>(ex.gates.size()));
          if (audit != nullptr) {
            AuditEvent e;
            e.event = "window_rerun";
            e.reason = "boundary_conflict";
            e.value = ex.id;
            audit->write_event(e);
          }
          WindowRunOptions wo;
          wo.base = &options_;
          wo.seed = window_seed(options_.seed, ex.id);
          wo.budget = &budget;
          wo.trace = trace;
          const auto oracle = window_records(ex.id);
          wo.replay = &oracle;
          if (prog != nullptr)
            prog->window_event(audit_iteration, ex.id, "rerun",
                               static_cast<long long>(ex.gates.size()));
          WindowResult res = optimize_window(ex, wo);
          if (!merge_window(ex, res, /*check_conflicts=*/false))
            next_queue.push_back(idx);
          progress_tick();
        }
        rerun_queue = std::move(next_queue);
      }
      iter_span.arg("applied", merged_total - merged_before);
    }
  } else {
    for (int outer = 0;
         progress && !stopped && outer < options_.max_outer_iterations;
         ++outer) {
      m_iterations.c->inc();
      audit_iteration = outer + 1;
      TraceSpan iter_span(trace, "iteration", "powder");
      iter_span.arg("outer", outer + 1);
      progress = false;
      if (stop_requested()) break;
      progress_tick();

      finder->reseed(options_.seed + 17 * static_cast<std::uint64_t>(outer));
      std::vector<CandidateSub> cands;
      {
        TraceSpan harvest_span(trace, "harvest", "harvest");
        if (prog != nullptr) prog->phase(audit_iteration, "harvest");
        cands = finder->find();
        harvest_span.arg("candidates", static_cast<long long>(cands.size()));
      }
      if (prog != nullptr)
        prog->phase(audit_iteration, "proof",
                    static_cast<long long>(cands.size()), "candidates");
      m_harvested.c->inc(static_cast<long long>(cands.size()));
      for (const CandidateSub& c : cands)
        m_cls_harvested[static_cast<std::size_t>(c.cls)].c->inc();
      m_truncated.c->inc(static_cast<long long>(finder->last_truncated()));
      if (outer >= 1) {
        report.diagnostics.candidate_gates_refreshed +=
            static_cast<long>(finder->last_refresh_count());
        report.diagnostics.candidate_index_size +=
            static_cast<long>(finder->index_size());
      }

      int performed = 0;
      while (performed < options_.repeat && !cands.empty()) {
        if (stop_requested()) {
          stopped = true;
          break;
        }
        // ---- select_power_red_subst --------------------------------------
        // Refresh validity and PG_A+PG_B of the surviving candidates (the
        // netlist has changed since harvesting), preselect the best, then
        // re-estimate PG_C for the shortlist only.
        const bool area_mode = options_.objective == Objective::kArea;
        std::vector<std::size_t> order;
        std::vector<double> metric(cands.size(), 0.0);
        for (std::size_t i = 0; i < cands.size();) {
          if (!substitution_still_valid(*netlist_, cands[i])) {
            m_stale.c->inc();
            audit_decision(cands[i], "rejected_stale");
            cands.erase(cands.begin() + static_cast<std::ptrdiff_t>(i));
            continue;
          }
          cands[i].pg_a = compute_pg_a(*netlist_, model, cands[i]);
          cands[i].pg_b = compute_pg_b(*netlist_, model, cands[i]);
          metric[i] = area_mode ? compute_area_gain(*netlist_, cands[i])
                                : cands[i].preselect_gain();
          order.push_back(i);
          ++i;
        }
        if (order.empty()) break;
        std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
          return metric[x] > metric[y];
        });
        const std::size_t shortlist =
            std::min<std::size_t>(order.size(),
                                  static_cast<std::size_t>(options_.shortlist));
        std::size_t best = cands.size();
        double best_gain = options_.min_gain;
        if (area_mode) {
          // Area gain is exact — no shortlist re-estimation needed.
          if (metric[order[0]] > best_gain) best = order[0];
        } else {
          for (std::size_t k = 0; k < shortlist; ++k) {
            CandidateSub& cand = cands[order[k]];
            cand.pg_c = compute_pg_c(*netlist_, model, cand);
            if (cand.total_gain() > best_gain) {
              best_gain = cand.total_gain();
              best = order[k];
            }
          }
        }
        if (best == cands.size()) break;  // nothing left that helps

        // Speculate on the rest of the shortlist: if the chosen candidate is
        // rejected (delay or proof), the netlist is unchanged and the next
        // selection will pick from these — their verdicts are then already
        // cached. A commit invalidates the speculation wholesale. Pointless
        // while the WAL oracle answers proofs (resume fast-forward) or the
        // ladder has stepped off the full engine.
        if (pipe != nullptr && !resume.active() &&
            ladder.level() == DegradationLevel::kFullProof) {
          for (std::size_t k = 0; k < shortlist; ++k)
            if (order[k] != best) pipe->speculate(cands[order[k]]);
        }

        CandidateSub chosen = cands[best];
        cands.erase(cands.begin() + static_cast<std::ptrdiff_t>(best));
        const bool pg_c_known = !area_mode;

        // ---- check_delay (§3.4) -------------------------------------------
        bool delay_violated;
        {
          TraceSpan delay_span(trace, "delay_check", "sta");
          delay_violated = violates_delay(chosen, report.delay_limit, timing,
                                          report.diagnostics);
          delay_span.arg("violated", delay_violated ? 1 : 0);
        }
        if (delay_violated) {
          m_delay.c->inc();
          audit_decision(chosen, "rejected_delay", pg_c_known);
          continue;
        }

        // ---- check_candidate: permissibility proof ------------------------
        // Fault injection can force an unproven candidate through this
        // pipeline; the post-commit guard below is what must catch it.
        bool forced = false;
        if (inject_fault(FaultInjector::Site::kStaleCandidate))
          forced = corrupt_candidate(*netlist_, verify_sim, &chosen);
        if (inject_fault(FaultInjector::Site::kAcceptProof)) forced = true;
        const char* proof_engine = nullptr;
        const char* proof_verdict = nullptr;
        double proof_us = -1.0;
        if (!forced) {
          // Cheap pre-proof: simulate the replacement on the independent
          // pattern set; any output difference is a definite refutation.
          const std::vector<std::uint64_t> words =
              replacement_words(verify_sim, chosen.rep);
          const FanoutRef* branch =
              chosen.branch.has_value() ? &*chosen.branch : nullptr;
          const auto diff = verify_sim.output_diff_with_replacement(
              chosen.target, branch, words);
          bool refuted = false;
          for (std::uint64_t w : diff)
            if (w) {
              refuted = true;
              break;
            }
          if (refuted) {
            m_presim.c->inc();
            audit_decision(chosen, "rejected_presim", pg_c_known);
            continue;
          }
          std::optional<AtpgResult> proof;
          if (resume.active()) {
            // WAL fast-forward: the oracle replaces the proof engines. A
            // candidate matching the next recorded commit was proved
            // permissible by the original run; any other candidate that
            // reaches this stage was rejected by it. Every cheaper stage
            // (harvest, selection, staleness, delay, presim) is recomputed
            // live, so once the cursor drains the run continues seamlessly —
            // and bit-identically — on the real engines.
            proof = resume.matches(chosen) ? AtpgResult::kUntestable
                                           : AtpgResult::kTestFound;
            proof_engine = "replay";
          } else if (ladder.level() == DegradationLevel::kSignatureOnly) {
            // Signature-reject-only rung: proof effort is no longer
            // affordable, and an unproven candidate is never accepted — so
            // everything that survives presim is rejected here while the run
            // drains toward a clean stop with its committed gains intact.
            m_degraded.c->inc();
            audit_decision(chosen, "rejected_degraded", pg_c_known, "none",
                           "skipped");
            continue;
          } else {
            const ProofEngine engine =
                ladder.level() == DegradationLevel::kPodemOnly
                    ? ProofEngine::kPodem
                    : options_.proof.engine;
            // Speculative verdicts were proved with the configured engine;
            // they stay usable only while the ladder has not changed it.
            if (pipe != nullptr && engine == options_.proof.engine) {
              proof = pipe->lookup(chosen);
              if (proof.has_value()) proof_engine = "speculative";
            }
            if (!proof.has_value()) {
              const bool timed = options_.trace.any();
              const std::uint64_t t0 = timed ? trace_now_ns() : 0;
              proof = prove_with_retry(atpg, sat, engine, chosen,
                                       options_.session.proof_retries,
                                       m_retries.c);
              if (timed)
                proof_us =
                    static_cast<double>(trace_now_ns() - t0) / 1000.0;
              proof_engine = engine_name(engine);
              m_inline.c->inc();
            }
          }
          proof_verdict = verdict_name(*proof);
          if (*proof != AtpgResult::kUntestable) {
            m_proof_rej.c->inc();
            audit_decision(chosen, "rejected_proof", pg_c_known, proof_engine,
                           proof_verdict, proof_us);
            continue;
          }
          m_cls_proved[static_cast<std::size_t>(chosen.cls)].c->inc();
        }

        // ---- perform_substitution + power_estimate_update -----------------
        const double power_before = model.total_power();
        const double area_before = netlist_->total_area();
        const bool replaying = resume.matches(chosen);
        AppliedSub applied;
        try {
          MutationScope scope(pipe);
          applied = journal.apply(chosen);
        } catch (const CheckError&) {
          // Stale or invalid at the last moment: the apply validated before
          // mutating, so the netlist is untouched — skip the candidate.
          if (replaying)
            throw Error::input(
                "resume diverged: a checkpointed substitution failed to "
                "re-apply (wrong input netlist or tampered log?)");
          m_apply_fail.c->inc();
          audit_decision(chosen, "apply_failed", pg_c_known, proof_engine,
                         proof_verdict, proof_us);
          continue;
        }
        resync();
        if (options_.check_invariants) netlist_->check_consistency();

        // ---- guard: the PO signatures must be untouched -------------------
        if (options_.guard.signature_check && !po_signatures_ok()) {
          if (replaying)
            throw Error::input(
                "resume diverged: the signature guard rejected a commit the "
                "checkpoint recorded as accepted");
          m_guard_rb.c->inc();
          audit_decision(chosen, "guard_rollback", pg_c_known, proof_engine,
                         proof_verdict, proof_us);
          try {
            {
              MutationScope scope(pipe);
              journal.rollback_last();
            }
            resync();
          } catch (const CheckError&) {
            // Rollback itself failed (possible only with a corrupted
            // journal); the deltas that did execute were published, so the
            // same resync still yields trustworthy caches. Stop committing
            // and let the final guard judge.
            resync();
            stopped = true;
            break;
          }
          continue;
        }

        const double power_after = model.total_power();
        ClassStats& cls =
            report.by_class[static_cast<std::size_t>(chosen.cls)];
        ++cls.applied;
        cls.power_delta += power_before - power_after;
        cls.area_delta += netlist_->total_area() - area_before;
        commit_log.push_back(CommitRecord{chosen.cls,
                                          power_before - power_after,
                                          netlist_->total_area() - area_before});
        if (attr != nullptr)
          attr->record_commit(static_cast<int>(chosen.cls), -1,
                              power_before - power_after);
        if (prog != nullptr)
          prog->commit(audit_iteration, subst_class_name(chosen.cls), -1,
                       power_before - power_after, power_after);
        m_applied.c->inc();
        if (replaying) {
          // Replay verification: the re-applied mutation must reproduce the
          // recorded delta bit-for-bit before the cursor moves on.
          if (!same_applied(resume.current().applied, applied))
            throw Error::input(
                "resume diverged: a replayed substitution produced a "
                "different netlist delta than the checkpoint recorded");
          resume.advance();
        }
        // Durable commit: the WAL frame is appended (and fsync'd) only after
        // the signature guard accepted the commit, so a resume never replays
        // a rolled-back substitution. A kill inside the frame write leaves a
        // torn tail the reader drops — the commit then simply re-runs live
        // on resume, with the same deterministic verdict.
        recorder.record_commit(audit_iteration, performed, chosen, applied);
        audit_decision(chosen, "accepted", pg_c_known, proof_engine,
                       proof_verdict, proof_us);
        ++performed;
        progress = true;
        progress_tick();
      }
      if (prog != nullptr)
        prog->phase(audit_iteration, "commit", performed, "applied");
      iter_span.arg("applied", performed);
    }
  }

  // Stop the proof workers before the end-of-run guard walk: from here on
  // the netlist mutates without speculation to invalidate.
  if (pipeline.has_value()) {
    pipeline->shutdown();
    report.diagnostics.proof_jobs_enqueued = pipeline->jobs_enqueued();
    report.diagnostics.speculative_proof_hits = pipeline->speculative_hits();
    report.diagnostics.stale_proofs_dropped = pipeline->stale_dropped();
  }

  // Registry -> report snapshot (the Diagnostics compat shim). Must happen
  // before the end-of-run guard walk, which adjusts the struct totals
  // directly — the registry counters stay monotonic.
  report.outer_iterations = static_cast<int>(m_iterations.delta());
  report.candidates_harvested = static_cast<int>(m_harvested.delta());
  report.rejected_stale = static_cast<int>(m_stale.delta());
  report.rejected_by_delay = static_cast<int>(m_delay.delta());
  report.rejected_by_atpg = static_cast<int>(
      m_presim.delta() + m_proof_rej.delta() + m_degraded.delta());
  report.substitutions_applied = static_cast<int>(m_applied.delta());
  report.diagnostics.apply_failures = static_cast<int>(m_apply_fail.delta());
  report.diagnostics.guard_rollbacks = static_cast<int>(m_guard_rb.delta());
  report.diagnostics.inline_proofs = m_inline.delta();
  report.diagnostics.windowing.windows_built =
      static_cast<long>(m_windows.delta());
  report.diagnostics.windowing.window_gates_total =
      static_cast<long>(m_window_gates.delta());
  report.diagnostics.windowing.window_commits =
      static_cast<long>(m_window_commits.delta());
  report.diagnostics.windowing.boundary_conflicts =
      static_cast<long>(m_window_conflicts.delta());
  report.diagnostics.windowing.window_reruns =
      static_cast<long>(m_window_reruns.delta());

  // ---- end-of-run guard: never emit a miscompiled netlist ---------------
  // Walk the journal back until the state passes every enabled check. With
  // intact deltas this converges at the latest on the pristine input; only
  // a corrupted journal can leave `guard_failed` set — reported, never
  // silent.
  if (options_.guard.signature_check || pristine.has_value()) {
    if (prog != nullptr) prog->phase(audit_iteration, "final_guard");
    auto state_good = [&]() {
      if (options_.guard.signature_check && !po_signatures_ok()) return false;
      if (pristine.has_value() &&
          !functionally_equivalent(*pristine, *netlist_))
        return false;
      return true;
    };
    while (!state_good() && !journal.empty()) {
      ++report.diagnostics.final_check_rollbacks;
      m_final_rb.c->inc();
      try {
        journal.rollback_last();
        resync();
      } catch (const CheckError&) {
        resync();
      }
      if (!commit_log.empty()) {
        const CommitRecord& rec = commit_log.back();
        ClassStats& cls = report.by_class[static_cast<std::size_t>(rec.cls)];
        --cls.applied;
        cls.power_delta -= rec.power_delta;
        cls.area_delta -= rec.area_delta;
        --report.substitutions_applied;
        commit_log.pop_back();
        // The attribution ledger pops in lockstep (same entry, same
        // double), keeping its per-class gains bitwise equal to by_class.
        if (attr != nullptr) attr->record_rollback();
      }
    }
    report.diagnostics.guard_failed = !state_good();
  }

  // Resub diagnostics snapshot — after the guard walk, so the applied/gain
  // columns reflect the commits that actually survived into the output.
  for (int i = 0; i < kNumResubClasses; ++i) {
    const auto k = static_cast<std::size_t>(i);
    auto& pc = report.diagnostics.resub.by_class[k];
    pc.harvested = static_cast<long>(m_cls_harvested[k].delta());
    pc.proved = static_cast<long>(m_cls_proved[k].delta());
    pc.applied = report.by_class[k].applied;
    pc.gain = report.by_class[k].power_delta;
  }
  report.diagnostics.resub.funcred_merges =
      static_cast<long>(m_funcred.delta());
  report.diagnostics.resub.harvest_truncated =
      static_cast<long>(m_truncated.delta());

  // Close the WAL with its end marker. Commits the end-of-run walk rolled
  // back stay recorded — a resume re-applies them and its own walk rolls
  // them back identically, so the final state still converges.
  recorder.record_end();
  report.diagnostics.degradation_events = ladder.transitions();
  report.diagnostics.retries = m_retries.delta();
  report.diagnostics.watchdog_requeues = m_watchdog.delta();
  report.diagnostics.checkpoint_frames = recorder.frames();
  report.diagnostics.resume_replayed = resume.replayed();
  report.diagnostics.checkpoint_disabled = recorder.degraded();
  if (ladder.mem_limit_hit()) report.diagnostics.mem_limit_hit = true;

  atpg_stats_ = atpg.stats();
  report.final_power = model.total_power();
  // The "after" sweep happens against exactly the state final_power was
  // read from, so the attribution sum reconciles bitwise here too.
  if (attr != nullptr) attr->end_run();
  report.final_area = netlist_->total_area();
  report.diagnostics.power_model.kind = power_model_name(model.kind());
  if (timed_model.has_value()) {
    report.diagnostics.power_model.vector_pairs =
        timed_model->glitch_options().num_vector_pairs;
    report.diagnostics.power_model.timed_resims = timed_model->resim_count();
    report.diagnostics.power_model.event_overflows =
        timed_model->event_overflows();
    report.diagnostics.power_model.glitch_share =
        timed_model->estimate().glitch_share();
  }
  report.final_delay = timing.circuit_delay();
  report.diagnostics.sta_incremental_visits +=
      static_cast<long>(timing.nodes_visited());
  report.diagnostics.sta_full_equiv_visits +=
      static_cast<long>(timing.full_equiv_visits());
  report.diagnostics.deltas_published = static_cast<long>(
      netlist_->deltas_published() - deltas_before);
  report.diagnostics.observer_notifications = static_cast<long>(
      netlist_->observer_notifications() - notifications_before);
  report.diagnostics.pin_slabs_allocated =
      static_cast<long>(netlist_->pin_slabs_allocated());
  report.diagnostics.pin_slabs_recycled =
      static_cast<long>(netlist_->pin_slabs_recycled());
  report.diagnostics.name_pool_bytes =
      static_cast<long>(netlist_->name_pool_bytes());
  report.diagnostics.peak_rss_bytes = static_cast<long>(peak_rss_bytes());
  report.cpu_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();

  // Publish the end-computed diagnostics into the registry too, so a
  // metrics export stands on its own without the report JSON next to it.
  if (options_.trace.metrics != nullptr) {
    MetricsRegistry& r = *options_.trace.metrics;
    auto pub = [&](const char* name, const char* help, long long v) {
      r.counter(name, help)->inc(v);
    };
    pub("powder_proof_jobs_enqueued_total",
        "Speculative proof jobs handed to workers",
        report.diagnostics.proof_jobs_enqueued);
    pub("powder_speculative_proof_hits_total",
        "Chosen candidates served from the speculative proof cache",
        report.diagnostics.speculative_proof_hits);
    pub("powder_stale_proofs_dropped_total",
        "Worker proof results invalidated by commits",
        report.diagnostics.stale_proofs_dropped);
    pub("powder_deltas_published_total",
        "Netlist deltas published during the run",
        report.diagnostics.deltas_published);
    pub("powder_observer_notifications_total",
        "Delta deliveries to netlist observers",
        report.diagnostics.observer_notifications);
    pub("powder_sta_incremental_visits_total",
        "Gates the incremental STA re-evaluated",
        report.diagnostics.sta_incremental_visits);
    pub("powder_sta_full_equiv_visits_total",
        "Gates a full STA would have re-evaluated",
        report.diagnostics.sta_full_equiv_visits);
    r.gauge("powder_power_initial", "Estimated power before optimization")
        ->set(report.initial_power);
    r.gauge("powder_power_final", "Estimated power after optimization")
        ->set(report.final_power);
    r.gauge("powder_area_final", "Total cell area after optimization")
        ->set(report.final_area);
    r.gauge("powder_delay_final", "Circuit delay after optimization")
        ->set(report.final_delay);
    r.gauge("powder_threads_used", "Resolved thread count of the run")
        ->set(static_cast<double>(threads));
    if (trace != nullptr) {
      r.gauge("powder_trace_events_recorded",
              "Events accepted into the trace rings so far")
          ->set(static_cast<double>(trace->events_recorded()));
      r.gauge("powder_trace_events_dropped",
              "Events dropped on full trace rings so far")
          ->set(static_cast<double>(trace->dropped()));
    }
    report.metrics_json = r.to_json();
  }
  if (prog != nullptr)
    prog->run_end(report.final_power, report.substitutions_applied,
                  report.outer_iterations);
  return report;
}

}  // namespace powder
