#include "opt/powder.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "power/power.hpp"
#include "util/check.hpp"

namespace powder {

PowderOptimizer::PowderOptimizer(Netlist* netlist, PowderOptions options)
    : netlist_(netlist), options_(std::move(options)) {
  POWDER_CHECK(netlist_ != nullptr);
}

bool PowderOptimizer::violates_delay(const CandidateSub& sub,
                                     double limit) const {
  if (!std::isfinite(limit)) return false;
  // Apply on a scratch copy and run full STA — exact and side-effect free.
  Netlist scratch = *netlist_;
  (void)apply_substitution(scratch, sub);
  const TimingAnalysis ta = analyze_timing(scratch);
  return ta.circuit_delay > limit + 1e-9;
}

PowderReport PowderOptimizer::run() {
  const auto t_start = std::chrono::steady_clock::now();
  PowderReport report;

  Simulator sim(*netlist_, options_.num_patterns, options_.pi_probs,
                options_.seed);
  PowerEstimator est(&sim);
  // Independent pattern set used as a cheap second opinion before the
  // expensive permissibility proof: a candidate that already fails on
  // fresh patterns is rejected without running PODEM/SAT at all.
  Simulator verify_sim(*netlist_, options_.num_patterns, options_.pi_probs,
                       options_.seed ^ 0x5EC0DD5EEDull);

  report.initial_power = est.total_power();
  report.initial_area = netlist_->total_area();
  report.initial_delay = analyze_timing(*netlist_).circuit_delay;
  report.delay_limit = options_.delay_limit_factor < 0.0
                           ? std::numeric_limits<double>::infinity()
                           : report.initial_delay *
                                 options_.delay_limit_factor;

  AtpgChecker atpg(*netlist_, options_.atpg);
  SatChecker sat(*netlist_, options_.sat);
  auto prove = [&](const CandidateSub& cand) {
    switch (options_.proof_engine) {
      case ProofEngine::kPodem:
        return atpg.check_replacement(cand.site(), cand.rep);
      case ProofEngine::kSat:
        return sat.check_replacement(cand.site(), cand.rep);
      case ProofEngine::kHybrid: {
        const AtpgResult r = atpg.check_replacement(cand.site(), cand.rep);
        if (r != AtpgResult::kAborted) return r;
        return sat.check_replacement(cand.site(), cand.rep);
      }
    }
    return AtpgResult::kAborted;
  };

  bool progress = true;
  for (int outer = 0;
       progress && outer < options_.max_outer_iterations; ++outer) {
    ++report.outer_iterations;
    progress = false;

    CandidateFinder finder(*netlist_, est, options_.candidates,
                           options_.seed + 17 * static_cast<std::uint64_t>(outer));
    std::vector<CandidateSub> cands = finder.find();
    report.candidates_harvested += static_cast<int>(cands.size());

    int performed = 0;
    while (performed < options_.repeat && !cands.empty()) {
      // ---- select_power_red_subst --------------------------------------
      // Refresh validity and PG_A+PG_B of the surviving candidates (the
      // netlist has changed since harvesting), preselect the best, then
      // re-estimate PG_C for the shortlist only.
      const bool area_mode = options_.objective == Objective::kArea;
      std::vector<std::size_t> order;
      std::vector<double> metric(cands.size(), 0.0);
      for (std::size_t i = 0; i < cands.size();) {
        if (!substitution_still_valid(*netlist_, cands[i])) {
          ++report.rejected_stale;
          cands.erase(cands.begin() + static_cast<std::ptrdiff_t>(i));
          continue;
        }
        cands[i].pg_a = compute_pg_a(*netlist_, est, cands[i]);
        cands[i].pg_b = compute_pg_b(*netlist_, est, cands[i]);
        metric[i] = area_mode ? compute_area_gain(*netlist_, cands[i])
                              : cands[i].preselect_gain();
        order.push_back(i);
        ++i;
      }
      if (order.empty()) break;
      std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
        return metric[x] > metric[y];
      });
      const std::size_t shortlist =
          std::min<std::size_t>(order.size(),
                                static_cast<std::size_t>(options_.shortlist));
      std::size_t best = cands.size();
      double best_gain = options_.min_gain;
      if (area_mode) {
        // Area gain is exact — no shortlist re-estimation needed.
        if (metric[order[0]] > best_gain) best = order[0];
      } else {
        for (std::size_t k = 0; k < shortlist; ++k) {
          CandidateSub& cand = cands[order[k]];
          cand.pg_c = compute_pg_c(*netlist_, est, cand);
          if (cand.total_gain() > best_gain) {
            best_gain = cand.total_gain();
            best = order[k];
          }
        }
      }
      if (best == cands.size()) break;  // nothing left that helps

      CandidateSub chosen = cands[best];
      cands.erase(cands.begin() + static_cast<std::ptrdiff_t>(best));

      // ---- check_delay (§3.4) -------------------------------------------
      if (violates_delay(chosen, report.delay_limit)) {
        ++report.rejected_by_delay;
        continue;
      }

      // ---- check_candidate: permissibility proof --------------------------
      // Cheap pre-proof: simulate the replacement on the independent
      // pattern set; any output difference is a definite refutation.
      {
        const std::vector<std::uint64_t> words =
            replacement_words(verify_sim, chosen.rep);
        const FanoutRef* branch =
            chosen.branch.has_value() ? &*chosen.branch : nullptr;
        const auto diff = verify_sim.output_diff_with_replacement(
            chosen.target, branch, words);
        bool refuted = false;
        for (std::uint64_t w : diff)
          if (w) {
            refuted = true;
            break;
          }
        if (refuted) {
          ++report.rejected_by_atpg;
          continue;
        }
      }
      const AtpgResult proof = prove(chosen);
      if (proof != AtpgResult::kUntestable) {
        ++report.rejected_by_atpg;
        continue;
      }

      // ---- perform_substitution + power_estimate_update ------------------
      const double power_before = est.total_power();
      const double area_before = netlist_->total_area();
      const AppliedSub applied = apply_substitution(*netlist_, chosen);
      est.update_after_change(applied.changed_roots);
      verify_sim.resimulate_from(applied.changed_roots);
      if (options_.check_invariants) netlist_->check_consistency();

      const double power_after = est.total_power();
      ClassStats& cls =
          report.by_class[static_cast<std::size_t>(chosen.cls)];
      ++cls.applied;
      cls.power_delta += power_before - power_after;
      cls.area_delta += netlist_->total_area() - area_before;
      ++report.substitutions_applied;
      ++performed;
      progress = true;
    }
  }

  atpg_stats_ = atpg.stats();
  report.final_power = est.total_power();
  report.final_area = netlist_->total_area();
  report.final_delay = analyze_timing(*netlist_).circuit_delay;
  report.cpu_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();
  return report;
}

}  // namespace powder
