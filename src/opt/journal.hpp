#pragma once
// Transactional application of substitutions.
//
// Every commit goes through the journal, which records the full inverse
// delta (rewired pins with their previous drivers, the fanin lists of the
// swept MFFC, the inserted gate). `rollback_last()` undoes the most recent
// commit exactly — revive the swept gates deepest-first, rewire the pins
// back, drop the inserted gate — and returns the gates whose function
// changed so the caller can re-simulate incrementally. This is what lets
// the optimizer's guard pass restore a last-known-good netlist instead of
// emitting a miscompiled one.

#include <cstddef>
#include <vector>

#include "opt/substitution.hpp"

namespace powder {

class TraceSession;
class MetricsRegistry;

class SubstJournal {
 public:
  explicit SubstJournal(Netlist* netlist);

  /// Attaches observability sinks (both borrowed, either may be null).
  /// Commits and rollbacks then emit "journal_commit"/"journal_rollback"
  /// spans and bump the journal counters; with null sinks the cost is one
  /// branch per operation.
  void set_trace(TraceSession* trace, MetricsRegistry* metrics);

  /// Applies `sub` and records its inverse delta. Throws CheckError —
  /// before any mutation — when the substitution is stale or invalid.
  const AppliedSub& apply(const CandidateSub& sub);

  /// Swaps `gate`'s cell for the functionally identical `new_cell` and
  /// records the inverse — the re-sizing pass commits through here so its
  /// edits share the guard/rollback machinery of substitutions.
  const AppliedSub& apply_resize(GateId gate, CellId new_cell);

  std::size_t size() const { return deltas_.size(); }
  bool empty() const { return deltas_.empty(); }

  /// Opaque mark identifying the current state; pass to rollback_to.
  std::size_t checkpoint() const { return deltas_.size(); }

  /// Undoes the most recent commit. Returns the gates whose function
  /// changed (deduplicated) — the seed set for incremental re-simulation.
  std::vector<GateId> rollback_last();

  /// Undoes every commit made after `mark`, newest first. Returns the
  /// union of changed roots across all undone commits.
  std::vector<GateId> rollback_to(std::size_t mark);

 private:
  Netlist* netlist_;
  std::vector<AppliedSub> deltas_;

  TraceSession* trace_ = nullptr;
  class Counter* m_commits_ = nullptr;
  class Counter* m_rollbacks_ = nullptr;

  std::vector<GateId> undo(const AppliedSub& delta);
};

}  // namespace powder
