#pragma once
// POWDER: power optimization of mapped netlists by permissible structural
// transformations — the paper's core algorithm (Figure 5).
//
//   power_estimate(netlist)
//   do {
//     cand_substitutions = get_candidate_substitutions(netlist)
//     while (repeat > 0 && cand_substitutions != {}) {
//       good = select_power_red_subst(...)      // PG_A+PG_B preselection,
//                                               // PG_C for the shortlist
//       if (check_delay(good) violates limit) continue;
//       if (!check_candidate(good))             // ATPG proof
//         continue;
//       perform_substitution(good);
//       power_estimate_update(good);            // TFO re-estimation
//     }
//   } while (cand_substitutions != {});
//
// With threads > 1 the run becomes a harvest/proof pipeline: simulation and
// candidate matching shard across a thread pool, and permissibility proofs
// run speculatively on worker threads fed by a bounded MPMC queue while a
// single commit thread applies substitutions through the journal (see
// DESIGN.md, "Parallel harvest/proof pipeline").

#include <array>
#include <chrono>
#include <string>
#include <utility>

#include "atpg/atpg.hpp"
#include "atpg/sat_checker.hpp"
#include "opt/candidates.hpp"
#include "opt/substitution.hpp"
#include "session/options.hpp"
#include "timing/incremental_timing.hpp"
#include "timing/timing.hpp"
#include "trace/options.hpp"
#include "window/options.hpp"

namespace powder {

/// What the greedy selection maximizes.
enum class Objective {
  kPower,  ///< predicted power gain PG_A + PG_B + PG_C (the paper)
  kArea,   ///< exact area gain — RAMBO-style cleanup, used for ablations
};

/// Post-commit equivalence guardrails. The signature check re-simulates an
/// independent pattern set after every commit and rolls the substitution
/// back on any primary-output mismatch; the final check builds a BDD miter
/// against the pristine input netlist at end of run and walks the journal
/// back to the last provably good state on mismatch. Together they enforce
/// the never-miscompare invariant: the optimizer either emits an equivalent
/// netlist or reports the rollback/failure in the PowderReport.
struct GuardOptions {
  bool signature_check = true;
  bool final_equivalence_check = false;  ///< exact but needs global BDDs
};

/// Permissibility-proof configuration: which engine settles candidates
/// (see ProofEngine) and the per-call limits of the two engines. Grouped
/// so a caller can hand a complete proof policy around as one value; the
/// Builder's `.proof_engine()/.atpg()/.sat()` methods remain thin adapters
/// onto this struct.
struct ProofOptions {
  ProofEngine engine = ProofEngine::kHybrid;
  AtpgOptions atpg;
  SatCheckerOptions sat;
};

/// Resource limits for one run. Exhaustion degrades the run (skip
/// candidate, fall back to the other engine, stop with a partial result
/// flagged in the report) — it never crashes or loops. The pools are shared
/// atomically by every proof worker (see ResourceBudget).
struct BudgetOptions {
  double deadline_seconds = -1.0;  ///< wall clock for the run; <0 disables
  long atpg_backtrack_pool = -1;   ///< global PODEM pool; <0 = unlimited
  long sat_conflict_pool = -1;     ///< global SAT pool; <0 = unlimited
};

struct PowderOptions {
  Objective objective = Objective::kPower;
  int num_patterns = 2048;
  std::vector<double> pi_probs;  ///< empty = all 0.5
  std::uint64_t seed = 1;

  /// Inner-loop applications before candidates are re-harvested (the
  /// paper's `repeat` parameter).
  int repeat = 25;

  /// Delay constraint as a factor of the initial circuit delay. 1.0
  /// reproduces the paper's "with delay constraints" mode, 1.2 allows 20%
  /// slower, negative disables timing checks entirely.
  double delay_limit_factor = -1.0;

  /// Substitutions must beat this power gain to be applied.
  double min_gain = 1e-9;

  /// Shortlist size for the PG_C re-estimation (paper §3.5 pre-selection).
  int shortlist = 12;

  int max_outer_iterations = 64;

  /// Total threads for the harvest/proof pipeline (global mode) or the
  /// window fan-out (windowed mode). 1 = the serial algorithm; 0 = one per
  /// hardware thread. The final netlist is bit-identical at any thread
  /// count (with unlimited proof pools and no deadline — finite budgets
  /// drain in a timing-dependent order).
  int threads = 1;

  /// Which power model the greedy loop optimizes (DESIGN.md §13). The
  /// default zero-delay model reproduces the paper bit-identically; the
  /// timed model makes PG and the reported power glitch-inclusive.
  PowerModelKind power_model = PowerModelKind::kZeroDelay;
  /// Event-driven engine knobs used when power_model == kTimed (vector
  /// pairs, event budget, stimulus, seed). The stimulus is normally
  /// derived from pi_probs; set it explicitly for temporally correlated
  /// inputs.
  GlitchOptions glitch;

  /// Permissibility-proof policy: engine choice + per-call engine limits.
  ProofOptions proof;
  /// Windowed partition/optimize/merge execution (DESIGN.md §11). The
  /// default mode is the classic global loop.
  WindowOptions window;
  CandidateOptions candidates;
  GuardOptions guard;
  BudgetOptions budget;
  /// Session durability + graceful degradation: WAL checkpointing, resume,
  /// memory-pressure ladder, proof-job retry/watchdog (DESIGN.md §10).
  SessionOptions session;
  /// Observability sinks (all borrowed, all optional): span trace, metrics
  /// registry, decision audit log. With every sink null the instrumentation
  /// in the pipeline reduces to one branch per probe site.
  TraceOptions trace;
  bool check_invariants = false;  ///< netlist consistency after every apply

  class Builder;
  /// Entry point of the fluent configuration API:
  ///   auto opt = PowderOptions::builder().threads(8).deadline(30s).build();
  static Builder builder();
};

/// Fluent construction of PowderOptions, the stable public way to configure
/// a run — callers no longer reach into the nested structs field-by-field.
class PowderOptions::Builder {
 public:
  Builder& objective(Objective o) { opts_.objective = o; return *this; }
  Builder& patterns(int n) { opts_.num_patterns = n; return *this; }
  Builder& pi_probs(std::vector<double> probs) {
    opts_.pi_probs = std::move(probs);
    return *this;
  }
  Builder& seed(std::uint64_t s) { opts_.seed = s; return *this; }
  Builder& power_model(PowerModelKind k) {
    opts_.power_model = k;
    return *this;
  }
  Builder& glitch(GlitchOptions g) {
    opts_.glitch = std::move(g);
    return *this;
  }
  Builder& glitch_vector_pairs(int n) {
    opts_.glitch.num_vector_pairs = n;
    return *this;
  }
  Builder& glitch_event_cap(long n) {
    opts_.glitch.max_events_per_pair = n;
    return *this;
  }
  Builder& repeat(int n) { opts_.repeat = n; return *this; }
  Builder& delay_limit_factor(double f) {
    opts_.delay_limit_factor = f;
    return *this;
  }
  Builder& min_gain(double g) { opts_.min_gain = g; return *this; }
  Builder& shortlist(int n) { opts_.shortlist = n; return *this; }
  Builder& max_outer_iterations(int n) {
    opts_.max_outer_iterations = n;
    return *this;
  }
  // Source-compat adapter: the flat proof knobs now live in the nested
  // ProofOptions group; existing callers keep compiling unchanged.
  Builder& proof_engine(ProofEngine e) {
    opts_.proof.engine = e;
    return *this;
  }
  Builder& threads(int n) { opts_.threads = n; return *this; }
  Builder& proof(ProofOptions p) { opts_.proof = std::move(p); return *this; }
  Builder& window(WindowOptions w) { opts_.window = w; return *this; }
  Builder& windowed(bool on) {
    opts_.window.mode = on ? WindowMode::kWindowed : WindowMode::kGlobal;
    return *this;
  }
  Builder& window_size(int gates) {
    opts_.window.max_gates = gates;
    return *this;
  }
  Builder& window_overlap(int gates) {
    opts_.window.overlap = gates;
    return *this;
  }
  Builder& window_order_seed(std::uint64_t seed) {
    opts_.window.order_seed = seed;
    return *this;
  }
  Builder& deadline(double seconds) {
    opts_.budget.deadline_seconds = seconds;
    return *this;
  }
  Builder& deadline(std::chrono::duration<double> d) {
    return deadline(d.count());
  }
  Builder& atpg_backtrack_pool(long n) {
    opts_.budget.atpg_backtrack_pool = n;
    return *this;
  }
  Builder& sat_conflict_pool(long n) {
    opts_.budget.sat_conflict_pool = n;
    return *this;
  }
  Builder& signature_check(bool on) {
    opts_.guard.signature_check = on;
    return *this;
  }
  Builder& final_equivalence_check(bool on) {
    opts_.guard.final_equivalence_check = on;
    return *this;
  }
  Builder& check_invariants(bool on) {
    opts_.check_invariants = on;
    return *this;
  }
  Builder& checkpoint_out(std::string path) {
    opts_.session.checkpoint_out = std::move(path);
    return *this;
  }
  Builder& resume_from(std::string path) {
    opts_.session.resume_from = std::move(path);
    return *this;
  }
  Builder& mem_limit_bytes(long long bytes) {
    opts_.session.mem_limit_bytes = bytes;
    return *this;
  }
  Builder& watchdog_seconds(double seconds) {
    opts_.session.watchdog_seconds = seconds;
    return *this;
  }
  Builder& proof_retries(int n) {
    opts_.session.proof_retries = n;
    return *this;
  }
  Builder& session(SessionOptions s) {
    opts_.session = std::move(s);
    return *this;
  }
  Builder& candidates(CandidateOptions c) {
    opts_.candidates = c;
    return *this;
  }
  Builder& resub(ResubOptions r) {
    opts_.candidates.resub = r;
    return *this;
  }
  /// Enables/disables the functional-reduction pre-pass.
  Builder& funcred(bool on) {
    opts_.candidates.resub.funcred = on;
    return *this;
  }
  /// Largest divisor-set size the harvest proposes (2 = pair classes only).
  Builder& max_divisors(int k) {
    opts_.candidates.resub.max_divisors = k;
    return *this;
  }
  Builder& atpg(AtpgOptions a) { opts_.proof.atpg = a; return *this; }
  Builder& sat(SatCheckerOptions s) { opts_.proof.sat = s; return *this; }
  Builder& trace(TraceSession* session) {
    opts_.trace.trace = session;
    return *this;
  }
  Builder& metrics(MetricsRegistry* registry) {
    opts_.trace.metrics = registry;
    return *this;
  }
  Builder& audit(AuditLog* log) {
    opts_.trace.audit = log;
    return *this;
  }
  Builder& progress(ProgressStream* stream) {
    opts_.trace.progress = stream;
    return *this;
  }
  Builder& attribution(PowerAttribution* sink) {
    opts_.trace.attribution = sink;
    return *this;
  }

  PowderOptions build() const { return opts_; }

 private:
  PowderOptions opts_;
};

inline PowderOptions::Builder PowderOptions::builder() { return Builder{}; }

/// Version of the JSON document PowderReport::to_json emits (the
/// `"schema_version"` top-level key). The stability contract lives in
/// DESIGN.md §11.4: within one version, existing keys never change type or
/// meaning and are never removed; adding keys bumps nothing, removing or
/// redefining them bumps this number. Version 1 is the pre-versioned PR 5
/// layout; version 2 adds `schema_version` itself and the
/// `diagnostics.windowing` sub-object. Version 3 redefines `by_class` from
/// the four paper classes to the seven resubstitution classes (OSK / ISK /
/// FUNCRED appended) — consumers iterating the old fixed four-key object
/// must re-read the contract, hence the bump — and adds
/// `diagnostics.resub`. Version 4 makes `initial_power`/`final_power`
/// model-relative — under `--power-model=timed` they are glitch-inclusive
/// totals, a redefinition of meaning for those runs — and adds the
/// `diagnostics.power_model` sub-object naming the model that produced
/// them. Version 5 extends the histogram objects inside `metrics` with
/// derived `p50`/`p90`/`p99` quantile keys (bucket upper bounds in ns,
/// null when the observation falls in the +Inf catch-all) — strictly
/// additive per key, but the histogram *object shape* is part of the
/// wire contract for consumers that iterate its members, so the version
/// records the change; nothing outside `metrics` moved.
inline constexpr int kReportSchemaVersion = 5;

struct ClassStats {
  int applied = 0;
  double power_delta = 0.0;  ///< measured power reduction (positive = saved)
  double area_delta = 0.0;   ///< measured area change (negative = saved)
};

struct PowderReport {
  double initial_power = 0.0, final_power = 0.0;
  double initial_area = 0.0, final_area = 0.0;
  double initial_delay = 0.0, final_delay = 0.0;
  double delay_limit = 0.0;  ///< absolute limit used (inf when disabled)

  int substitutions_applied = 0;
  int candidates_harvested = 0;
  int rejected_by_delay = 0;
  int rejected_by_atpg = 0;
  int rejected_stale = 0;
  int outer_iterations = 0;
  double cpu_seconds = 0.0;

  std::array<ClassStats, kNumResubClasses> by_class;  ///< indexed by ResubClass

  /// Robustness and threading accounting, separated from the core result so
  /// consumers comparing runs (e.g. the determinism test) can ignore the
  /// timing-dependent part wholesale.
  struct Diagnostics {
    int guard_rollbacks = 0;        ///< commits undone by the signature guard
    int final_check_rollbacks = 0;  ///< commits undone by the end-of-run check
    int apply_failures = 0;         ///< applies rejected by the validity check
    bool guard_failed = false;      ///< inequivalence persisted after rollback
    bool budget_exhausted = false;  ///< both proof pools drained
    bool deadline_hit = false;      ///< wall-clock deadline stopped the run

    // Session durability & degradation accounting (DESIGN.md §10).
    int degradation_events = 0;   ///< ladder step-downs published this run
    long retries = 0;             ///< transient proof failures retried
    long watchdog_requeues = 0;   ///< stuck proof jobs re-proved inline
    long checkpoint_frames = 0;   ///< WAL commit frames durably written
    long resume_replayed = 0;     ///< commits fast-forwarded from the WAL
    bool checkpoint_disabled = false;  ///< checkpointing lost to an I/O error
    bool mem_limit_hit = false;   ///< RSS crossed session.mem_limit_bytes

    int threads_used = 1;             ///< resolved thread count of the run
    long proof_jobs_enqueued = 0;     ///< speculative jobs handed to workers
    long speculative_proof_hits = 0;  ///< chosen candidates already proved
    long stale_proofs_dropped = 0;    ///< worker results invalidated by commits
    long inline_proofs = 0;           ///< proofs run on the commit thread

    // Incremental-core accounting (DESIGN.md §6).
    long deltas_published = 0;        ///< netlist deltas this run published
    long observer_notifications = 0;  ///< delta deliveries to subscribers
    long sta_incremental_visits = 0;  ///< gates the incremental STA touched
    long sta_full_equiv_visits = 0;   ///< what full STA would have touched
    /// Candidate-index work on iterations >= 2 (iteration 1 is always a
    /// full build): gates re-hashed vs the index size at those refreshes.
    long candidate_gates_refreshed = 0;
    long candidate_index_size = 0;

    // Data-plane memory accounting (DESIGN.md §7).
    long pin_slabs_allocated = 0;  ///< pin-arena slabs carved from the pools
    long pin_slabs_recycled = 0;   ///< slab reuses served by the freelists
    long name_pool_bytes = 0;      ///< bytes held by the interned-name pool
    long peak_rss_bytes = 0;       ///< VmHWM sampled at end of run (0=unknown)

    /// Windowed-mode accounting (DESIGN.md §11); all zero in global mode.
    /// Versioned with the report schema: fields are only ever added within
    /// a schema version, never removed or redefined.
    struct Windowing {
      long windows_built = 0;       ///< extractions, incl. conflict re-runs
      long window_commits = 0;      ///< local commits merged into the parent
      long boundary_conflicts = 0;  ///< windows skipped at merge (overlap)
      long window_reruns = 0;       ///< serial re-optimizations after conflicts
      long window_gates_total = 0;  ///< sum of extracted window gate counts
    };
    Windowing windowing;

    /// Per-class accept/reject economics of the generalized resubstitution
    /// framework, mirrored from the MetricsRegistry counters. Indexed by
    /// ResubClass; `gain` is the measured power delta of the class's
    /// applied transforms (same value as by_class[i].power_delta).
    struct Resub {
      struct PerClass {
        long harvested = 0;  ///< candidates the finder proposed
        long proved = 0;     ///< candidates proved permissible
        long applied = 0;    ///< candidates committed and kept
        double gain = 0.0;   ///< measured power reduction of the class
      };
      std::array<PerClass, kNumResubClasses> by_class;
      long funcred_merges = 0;     ///< pre-pass equivalence merges kept
      long harvest_truncated = 0;  ///< candidates dropped by max_candidates
    };
    Resub resub;

    /// Power-model accounting (schema version 4). `kind` is the
    /// power_model_name() spelling; the remaining fields are zero for the
    /// zero-delay model.
    struct PowerModelDiag {
      std::string kind = "zero-delay";
      int vector_pairs = 0;       ///< event-sim sample size per estimate
      long timed_resims = 0;      ///< full event-driven recomputations
      long event_overflows = 0;   ///< pairs truncated by the event budget
      double glitch_share = 0.0;  ///< final (timed - zero-delay) / timed
    };
    PowerModelDiag power_model;
  };
  Diagnostics diagnostics;

  /// End-of-run snapshot of the attached MetricsRegistry as a JSON object
  /// (empty when the run had no metrics sink). to_json() embeds it under
  /// the "metrics" key, which is how --report-json picks the counters up.
  std::string metrics_json;

  double power_reduction_percent() const {
    return initial_power > 0.0
               ? 100.0 * (initial_power - final_power) / initial_power
               : 0.0;
  }
  double area_reduction_percent() const {
    return initial_area > 0.0
               ? 100.0 * (initial_area - final_area) / initial_area
               : 0.0;
  }

  /// Serializes every field (including diagnostics and per-class stats) as
  /// a JSON object; the CLI's --report-json and the bench harness use this
  /// instead of hand-formatting fields.
  std::string to_json() const;
};

class PowderOptimizer {
 public:
  PowderOptimizer(Netlist* netlist, PowderOptions options = {});

  /// Runs the full optimization; the netlist is modified in place.
  PowderReport run();

  const AtpgChecker::Stats& atpg_stats() const { return atpg_stats_; }

 private:
  Netlist* netlist_;
  PowderOptions options_;
  AtpgChecker::Stats atpg_stats_;

  /// Throws CheckError on malformed options (non-positive pattern count,
  /// pi_probs size/range mismatch, empty shortlist, ...).
  void validate_options() const;

  /// Applies the delay check of §3.4 on a scratch copy of the netlist,
  /// using an incremental STA seeded from `timing` (the main netlist's
  /// analysis) so only the substitution's dirty region is re-propagated.
  /// Visit counts are accumulated into `diag`.
  bool violates_delay(const CandidateSub& sub, double limit,
                      IncrementalTiming& timing,
                      PowderReport::Diagnostics& diag) const;
};

/// Stable library entry point (also exported by the umbrella header
/// src/powder.hpp): optimizes `netlist` in place and returns the report.
PowderReport optimize(Netlist& netlist, const PowderOptions& options = {});

}  // namespace powder
