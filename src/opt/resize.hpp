#pragma once
// Gate re-sizing for low power under timing constraints.
//
// The paper's Figure 1 places "gate re-sizing" after mapping as a separate
// optimization phase (Bahar et al. [14] do it for power with timing
// constraints). This pass swaps gates between drive-strength variants of
// the same function:
//  * downsizing replaces a gate by a variant with smaller input
//    capacitance (less switched capacitance upstream) and larger drive
//    resistance — accepted only while the delay constraint still holds;
//  * upsizing is used to *recover* timing: when the constraint is
//    violated, critical gates get stronger variants.
//
// Resizing never changes any logic function, so it composes freely with
// POWDER before or after.

#include "netlist/netlist.hpp"

namespace powder {

struct ResizeOptions {
  /// Delay limit as factor of the circuit's delay at entry; negative
  /// disables the timing constraint (pure power downsizing).
  double delay_limit_factor = 1.0;
  /// PI probabilities for activity weighting (empty = all 0.5).
  std::vector<double> pi_probs;
  int num_patterns = 2048;
  std::uint64_t seed = 1;
  int max_rounds = 4;
};

struct ResizeReport {
  int downsized = 0;
  int upsized = 0;
  /// Commits undone because the post-commit primary-output signature
  /// check failed (library truth-table bug or injected fault).
  int guard_rollbacks = 0;
  double initial_power = 0.0, final_power = 0.0;
  double initial_delay = 0.0, final_delay = 0.0;
  double initial_area = 0.0, final_area = 0.0;
};

/// Re-sizes gates of `netlist` in place.
ResizeReport resize_gates(Netlist* netlist, const ResizeOptions& options = {});

}  // namespace powder
