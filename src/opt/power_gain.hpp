#pragma once
// Power-gain analysis of structural transformations (paper §3.3),
// computed against the abstract PowerModel so the greedy loop can
// optimize either the paper's zero-delay power or the glitch-inclusive
// timed power.
//
//   PG(trans) = PG_A + PG_B + PG_C
//
// PG_A (>= 0): switched capacitance of the removed dominated region plus
//   the unloaded pins of its inputs — computable without re-estimation
//   from the model's cached activities (timed activities include the
//   glitches that die with the region).
// PG_B (<= 0): new load placed on the substituting signal(s), and for
//   OS3/IS3 the new gate's own output — computable without re-estimation.
//   The new gate's own activity is its zero-delay word activity under both
//   models (its timed activity does not exist yet); for the timed model
//   PG_C absorbs the correction below.
// PG_C (any sign): activity changes across the transitive fanout of the
//   substituted signal. Zero-delay: a non-destructive trial simulation of
//   exactly that region. Timed: an event-driven re-estimate of a scratch
//   copy with the substitution applied — PG_C is defined as the measured
//   glitch-inclusive delta minus the already-booked PG_A + PG_B, making
//   total_gain() the exact timed power saving (requires pg_a/pg_b to be
//   filled on `sub` before the call, which the optimizer's shortlist pass
//   guarantees).

#include <vector>

#include "opt/substitution.hpp"
#include "power/model.hpp"
#include "power/power.hpp"

namespace powder {

/// The 64-bit-parallel value words of the substituting signal under the
/// simulator's current patterns.
std::vector<std::uint64_t> replacement_words(const Simulator& sim,
                                             const ReplacementFunction& rep);

/// Switching activity 2p(1-p) of a word vector.
double words_activity(std::span<const std::uint64_t> words);

double compute_pg_a(const Netlist& netlist, const PowerModel& est,
                    const CandidateSub& sub);
double compute_pg_b(const Netlist& netlist, const PowerModel& est,
                    const CandidateSub& sub);
double compute_pg_c(const Netlist& netlist, const PowerModel& est,
                    const CandidateSub& sub);

/// Exact area gain (removed cell area minus inserted cell area) of a
/// substitution — positive when the netlist shrinks. Needs no
/// re-estimation; used by the optimizer's area objective (the paper's
/// Table 2 contrasts power and area optimization).
double compute_area_gain(const Netlist& netlist, const CandidateSub& sub);

}  // namespace powder
