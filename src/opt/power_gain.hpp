#pragma once
// Power-gain analysis of structural transformations (paper §3.3).
//
//   PG(trans) = PG_A + PG_B + PG_C
//
// PG_A (>= 0): switched capacitance of the removed dominated region plus
//   the unloaded pins of its inputs — computable without re-estimation.
// PG_B (<= 0): new load placed on the substituting signal(s), and for
//   OS3/IS3 the new gate's own output — computable without re-estimation.
// PG_C (any sign): activity changes across the transitive fanout of the
//   substituted signal — requires re-estimating exactly that region, done
//   here as a non-destructive trial simulation.

#include <vector>

#include "opt/substitution.hpp"
#include "power/power.hpp"

namespace powder {

/// The 64-bit-parallel value words of the substituting signal under the
/// simulator's current patterns.
std::vector<std::uint64_t> replacement_words(const Simulator& sim,
                                             const ReplacementFunction& rep);

/// Switching activity 2p(1-p) of a word vector.
double words_activity(std::span<const std::uint64_t> words);

double compute_pg_a(const Netlist& netlist, const PowerEstimator& est,
                    const CandidateSub& sub);
double compute_pg_b(const Netlist& netlist, const PowerEstimator& est,
                    const CandidateSub& sub);
double compute_pg_c(const Netlist& netlist, const PowerEstimator& est,
                    const CandidateSub& sub);

/// Exact area gain (removed cell area minus inserted cell area) of a
/// substitution — positive when the netlist shrinks. Needs no
/// re-estimation; used by the optimizer's area objective (the paper's
/// Table 2 contrasts power and area optimization).
double compute_area_gain(const Netlist& netlist, const CandidateSub& sub);

}  // namespace powder
