#pragma once
// Candidate-substitution harvesting via fault-simulation signatures.
//
// For every target site the simulator provides (a) the signal's signature
// over the sampled patterns and (b) its observability mask (patterns where
// flipping it changes some primary output). A source signal b is a
// candidate replacement when its signature agrees with the target's on
// every *observable* pattern — i.e., the sampled evidence is consistent
// with b being a permissible function of the target's location. Candidates
// are later *proved* (or refuted) by the ATPG checker; this stage only has
// to be sound-for-rejection and cheap.
//
// Pair candidates (OS3/IS3) are enumerated over a bounded local pool to
// keep the quadratic step affordable, mirroring the windowed clause
// analysis of the TOS implementation.
//
// When a ThreadPool is supplied, harvesting runs as three passes — a
// parallel observability pass, a serial RNG pre-draw, and a parallel
// signature-bucket matching pass over per-site slices — that together
// reproduce the serial harvest bit-for-bit (same candidates, same order,
// same RNG stream) at any thread count.
//
// The finder is persistent across optimization iterations: it subscribes
// to the netlist delta bus (membership changes) and drains the simulator's
// refreshed-gate accumulator (signature changes), and find() re-hashes
// only the gates dirtied since the previous harvest. The maintained index
// is structurally identical to a fresh rebuild — signal list ascending,
// signature buckets sorted — so a persistent finder with the same RNG
// stream returns bit-identical candidates.

#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "opt/power_gain.hpp"
#include "opt/substitution.hpp"
#include "power/power.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace powder {

class TraceSession;

/// Knobs of the generalized resubstitution framework: how far beyond the
/// paper's pair classes the harvest reaches, and whether the
/// functional-reduction pre-pass runs before the greedy loop.
struct ResubOptions {
  bool enable_three_subs = true;
  int three_sub_b_pool = 20;    ///< first operands tried for OS3/IS3
  int max_three_per_target = 6;
  /// Maximum divisor-set size harvested. 2 = the paper's classes only;
  /// k >= 3 additionally harvests OSK/ISK candidates (new k-input gates)
  /// up to min(max_divisors, largest library arity) divisors.
  int max_divisors = 2;
  int ksub_b_pool = 10;         ///< divisor pool prefix for OSK/ISK tuples
  int max_k_per_target = 4;     ///< OSK/ISK candidates kept per site
  /// Run the functional-reduction pre-pass (signature-grouped equivalence
  /// merging) before the greedy loop.
  bool funcred = false;
};

struct CandidateOptions {
  int local_pool_size = 64;     ///< structural-neighborhood sources/target
  int random_pool_size = 24;    ///< extra random sources/target
  int max_candidates = 800;     ///< global cap, best preselect gain first
  bool allow_constants = true;  ///< replace unobservable signals by constants
  ResubOptions resub;           ///< generalized-resubstitution knobs
};

class CandidateFinder final : public NetlistObserver {
 public:
  CandidateFinder(const Netlist& netlist, const PowerModel& estimator,
                  CandidateOptions options = {}, std::uint64_t seed = 1,
                  ThreadPool* pool = nullptr);
  ~CandidateFinder() override;
  CandidateFinder(const CandidateFinder&) = delete;
  CandidateFinder& operator=(const CandidateFinder&) = delete;

  /// Harvests candidates, with pg_a/pg_b filled, sorted by decreasing
  /// preselection gain and truncated to max_candidates. Refreshes the
  /// signature index first (requires a clean simulator).
  std::vector<CandidateSub> find();

  /// Restarts the RNG stream (one reseed per optimization iteration keeps
  /// the harvest identical to a freshly constructed finder).
  void reseed(std::uint64_t seed) { rng_ = Rng(seed); }

  /// Attaches a trace session (borrowed, may be null). Parallel harvest
  /// passes then emit one "harvest_shard" span per worker shard, which is
  /// what makes load imbalance across sites visible in Perfetto.
  void set_trace(TraceSession* trace) { trace_ = trace; }

  /// Delta-bus subscription: accumulates membership changes (not for
  /// users; signature changes arrive via the simulator's drain).
  void on_delta(const NetlistDelta& delta) override;

  // Diagnostics for the last find(): gates re-hashed by the index refresh,
  // whether that refresh was a full rebuild, and the index size.
  std::size_t last_refresh_count() const { return last_refresh_count_; }
  bool last_refresh_full() const { return last_refresh_full_; }
  std::size_t index_size() const { return signal_gates_.size(); }
  /// Candidates dropped by the max_candidates cap in the last find().
  /// Non-zero means the harvest was NOT full coverage of the netlist.
  std::size_t last_truncated() const { return last_truncated_; }

 private:
  /// One harvesting site: a stem (no branch) or a single fanout branch.
  struct Site {
    GateId target{};
    std::optional<FanoutRef> branch;
  };

  /// Pass-1 result for a site: everything derivable without touching the
  /// shared RNG.
  struct SitePrep {
    std::vector<std::uint64_t> obs;
    bool skip = false;  ///< site is done after the (optional) constant cand
    std::optional<CandidateSub> const_cand;
  };

  const Netlist* netlist_;
  const PowerModel* estimator_;
  const Simulator* sim_;
  CandidateOptions options_;
  Rng rng_;
  ThreadPool* pool_;
  TraceSession* trace_ = nullptr;

  std::vector<GateId> signal_gates_;  // live PIs + cells, ascending
  // Global equivalence index: hash of the value signature (and of its
  // complement) -> signals. Catches functionally identical logic anywhere
  // in the circuit, far beyond the structural neighborhood. Buckets are
  // kept sorted ascending (the fresh-build order) across incremental
  // updates.
  std::unordered_map<std::uint64_t, std::vector<GateId>> by_signature_;
  std::vector<std::uint64_t> sig_hash_, inv_sig_hash_;
  std::vector<std::uint8_t> in_index_;  // gate currently in the index?

  // Epoch-dirty gates accumulated from the delta bus, plus the refresh
  // bookkeeping of the last find().
  bool pending_full_ = false;
  std::vector<GateId> pending_;
  std::vector<std::uint8_t> pending_flag_;
  std::size_t last_refresh_count_ = 0;
  bool last_refresh_full_ = true;
  std::size_t last_truncated_ = 0;

  void rebuild_index();
  void refresh_index();
  void rehash_gate(GateId g);
  void index_insert(GateId g);
  void index_erase(GateId g);

  /// Runs fn(i) for every site index, sharded across the pool when one is
  /// attached (shards are claimed dynamically for load balance).
  void for_sites(std::size_t n, const std::function<void(std::size_t)>& fn);

  SitePrep prepare_site(GateId target, const FanoutRef* branch) const;
  std::vector<GateId> build_pool(
      GateId around, const std::vector<std::uint8_t>& forbidden,
      std::span<const std::size_t> random_draws) const;
  void match_site(GateId target, const FanoutRef* branch, const SitePrep& prep,
                  std::span<const std::size_t> random_draws,
                  std::vector<CandidateSub>* out) const;
};

}  // namespace powder
