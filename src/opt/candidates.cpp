#include "opt/candidates.hpp"

#include <span>

#include <algorithm>
#include <functional>

#include "trace/trace.hpp"
#include "util/check.hpp"

namespace powder {

namespace {

/// True if (a ^ b) & mask == 0 word-wise.
bool agrees(std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
            std::span<const std::uint64_t> mask, bool invert_b) {
  for (std::size_t w = 0; w < a.size(); ++w) {
    const std::uint64_t bv = invert_b ? ~b[w] : b[w];
    if ((a[w] ^ bv) & mask[w]) return false;
  }
  return true;
}

bool all_zero(std::span<const std::uint64_t> mask) {
  for (std::uint64_t w : mask)
    if (w) return false;
  return true;
}

}  // namespace

CandidateFinder::CandidateFinder(const Netlist& netlist,
                                 const PowerModel& estimator,
                                 CandidateOptions options, std::uint64_t seed,
                                 ThreadPool* pool)
    : netlist_(&netlist),
      estimator_(&estimator),
      sim_(&estimator.simulator()),
      options_(options),
      rng_(seed),
      pool_(pool) {
  rebuild_index();
  netlist_->attach_observer(this);
}

CandidateFinder::~CandidateFinder() { netlist_->detach_observer(this); }

void CandidateFinder::rehash_gate(GateId g) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  std::uint64_t hi_hash = 0xCBF29CE484222325ull;
  for (std::uint64_t w : sim_->value(g)) {
    h = (h ^ w) * 0x100000001B3ull;
    hi_hash = (hi_hash ^ ~w) * 0x100000001B3ull;
  }
  sig_hash_[g] = h;
  inv_sig_hash_[g] = hi_hash;
}

void CandidateFinder::rebuild_index() {
  const std::size_t n = netlist_->num_slots();
  signal_gates_.clear();
  by_signature_.clear();
  in_index_.assign(n, 0);
  sig_hash_.assign(n, 0);
  inv_sig_hash_.assign(n, 0);
  for (GateId g = 0; g < n; ++g)
    if (netlist_->alive(g) && netlist_->kind(g) != GateKind::kOutput) {
      signal_gates_.push_back(g);
      in_index_[g] = 1;
    }
  // Signature hashes for global-equivalence lookup (both phases). The hash
  // computation is sharded (disjoint writes per gate); bucket insertion
  // stays serial so bucket order is the deterministic signal_gates_ order.
  auto hash_range = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) rehash_gate(signal_gates_[i]);
  };
  if (pool_ != nullptr && !ThreadPool::in_parallel_region()) {
    pool_->parallel_for(signal_gates_.size(), 64, hash_range);
  } else {
    hash_range(0, signal_gates_.size());
  }
  for (GateId g : signal_gates_) by_signature_[sig_hash_[g]].push_back(g);
}

void CandidateFinder::index_erase(GateId g) {
  const auto bucket_it = by_signature_.find(sig_hash_[g]);
  POWDER_CHECK(bucket_it != by_signature_.end());
  std::vector<GateId>& bucket = bucket_it->second;
  const auto bit = std::find(bucket.begin(), bucket.end(), g);
  POWDER_CHECK(bit != bucket.end());
  bucket.erase(bit);
  if (bucket.empty()) by_signature_.erase(bucket_it);
  const auto sit =
      std::lower_bound(signal_gates_.begin(), signal_gates_.end(), g);
  POWDER_CHECK(sit != signal_gates_.end() && *sit == g);
  signal_gates_.erase(sit);
  in_index_[g] = 0;
}

void CandidateFinder::index_insert(GateId g) {
  rehash_gate(g);
  std::vector<GateId>& bucket = by_signature_[sig_hash_[g]];
  bucket.insert(std::lower_bound(bucket.begin(), bucket.end(), g), g);
  signal_gates_.insert(
      std::lower_bound(signal_gates_.begin(), signal_gates_.end(), g), g);
  in_index_[g] = 1;
}

void CandidateFinder::on_delta(const NetlistDelta& delta) {
  switch (delta.kind) {
    case DeltaKind::kGateAdded:
    case DeltaKind::kGateRevived:
    case DeltaKind::kGateRemoved: {
      if (pending_full_) return;
      if (pending_flag_.size() < netlist_->num_slots())
        pending_flag_.resize(netlist_->num_slots(), 0);
      if (!pending_flag_[delta.gate]) {
        pending_flag_[delta.gate] = 1;
        pending_.push_back(delta.gate);
      }
      break;
    }
    case DeltaKind::kRebuilt:
      for (GateId g : pending_) pending_flag_[g] = 0;
      pending_.clear();
      pending_full_ = true;
      break;
    case DeltaKind::kFaninChanged:
    case DeltaKind::kCellChanged:
      // Membership is unchanged; the value dirt arrives through the
      // simulator's refreshed-gate drain.
      break;
  }
}

void CandidateFinder::refresh_index() {
  POWDER_CHECK_MSG(!sim_->pending(),
                   "candidate harvest on a stale simulator — refresh first");
  const Simulator::Refreshed drained = sim_->drain_refreshed();
  if (pending_full_ || drained.full) {
    rebuild_index();
    for (GateId g : pending_) pending_flag_[g] = 0;
    pending_.clear();
    pending_full_ = false;
    last_refresh_full_ = true;
    last_refresh_count_ = signal_gates_.size();
    return;
  }
  const std::size_t n = netlist_->num_slots();
  if (in_index_.size() < n) in_index_.resize(n, 0);
  if (sig_hash_.size() < n) {
    sig_hash_.resize(n, 0);
    inv_sig_hash_.resize(n, 0);
  }
  if (pending_flag_.size() < n) pending_flag_.resize(n, 0);
  for (GateId g : drained.gates) {
    if (!pending_flag_[g]) {
      pending_flag_[g] = 1;
      pending_.push_back(g);
    }
  }
  last_refresh_full_ = false;
  last_refresh_count_ = pending_.size();
  for (GateId g : pending_) {
    pending_flag_[g] = 0;
    // Erase-then-reinsert keeps the maintained index structurally
    // identical to a fresh rebuild (ascending signal list, sorted
    // buckets), so harvests stay bit-identical.
    if (in_index_[g]) index_erase(g);
    if (netlist_->alive(g) && netlist_->kind(g) != GateKind::kOutput)
      index_insert(g);
  }
  pending_.clear();
}

void CandidateFinder::for_sites(std::size_t n,
                                const std::function<void(std::size_t)>& fn) {
  if (pool_ == nullptr || ThreadPool::in_parallel_region() || n < 2) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // More shards than lanes: shards are claimed dynamically, which balances
  // the very uneven per-site cost (a few sites dominate the harvest).
  const int shards = static_cast<int>(std::min<std::size_t>(
      n, static_cast<std::size_t>(pool_->parallelism()) * 8));
  pool_->for_shards(shards, [&](int shard, int num_shards) {
    TraceSpan span(trace_, "harvest_shard", "harvest");
    const std::size_t lo =
        n * static_cast<std::size_t>(shard) / static_cast<std::size_t>(num_shards);
    const std::size_t hi = n * (static_cast<std::size_t>(shard) + 1) /
                           static_cast<std::size_t>(num_shards);
    span.arg("shard", shard);
    span.arg("sites", static_cast<long long>(hi - lo));
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

std::vector<GateId> CandidateFinder::build_pool(
    GateId around, const std::vector<std::uint8_t>& forbidden,
    std::span<const std::size_t> random_draws) const {
  std::vector<GateId> pool;
  std::vector<std::uint8_t> seen(netlist_->num_slots(), 0);
  auto try_add = [&](GateId g) {
    if (seen[g] || forbidden[g] || !netlist_->alive(g)) return false;
    seen[g] = 1;
    if (netlist_->kind(g) == GateKind::kOutput) return false;
    pool.push_back(g);
    return true;
  };
  // Global equivalence hits first: signals whose signature matches the
  // target's (either phase) anywhere in the circuit.
  for (std::uint64_t h : {sig_hash_[around], inv_sig_hash_[around]}) {
    if (const auto it = by_signature_.find(h); it != by_signature_.end())
      for (GateId g : it->second)
        if (g != around) try_add(g);
  }
  // Breadth-first over the undirected netlist graph starting at the target;
  // nearby signals share support and are the most likely permissible
  // replacements (and the cheapest to wire).
  std::vector<GateId> frontier{around};
  std::vector<std::uint8_t> visited(netlist_->num_slots(), 0);
  visited[around] = 1;
  while (!frontier.empty() &&
         static_cast<int>(pool.size()) < options_.local_pool_size) {
    std::vector<GateId> next;
    for (GateId g : frontier) {
      auto visit = [&](GateId n) {
        if (visited[n]) return;
        visited[n] = 1;
        try_add(n);
        next.push_back(n);
      };
      for (GateId fi : netlist_->fanins(g)) visit(fi);
      for (const FanoutRef& br : netlist_->fanouts(g)) visit(br.gate);
      if (static_cast<int>(pool.size()) >= options_.local_pool_size) break;
    }
    frontier = std::move(next);
  }
  // A few random signals for diversity (finds global equivalences the
  // neighborhood misses). The indices were pre-drawn serially in site order
  // so the RNG stream is identical to the serial harvest.
  for (std::size_t idx : random_draws) try_add(signal_gates_[idx]);
  return pool;
}

CandidateFinder::SitePrep CandidateFinder::prepare_site(
    GateId target, const FanoutRef* branch) const {
  SitePrep prep;
  const auto sig_a = sim_->value(target);
  prep.obs = branch == nullptr ? sim_->stem_observability(target)
                               : sim_->branch_observability(target, *branch);

  auto make_base = [&]() {
    CandidateSub cand;
    cand.target = target;
    if (branch != nullptr) {
      cand.branch = *branch;
      cand.cls = SubstClass::kIS2;
    } else {
      cand.cls = SubstClass::kOS2;
    }
    return cand;
  };

  // Constant replacement: permissible-by-evidence when the signal never
  // observably carries the other value (fully unobservable signals satisfy
  // both; pick the majority value so the dead cone keeps its polarity).
  if (options_.allow_constants) {
    bool can0 = true, can1 = true;
    for (std::size_t w = 0; w < prep.obs.size(); ++w) {
      if (sig_a[w] & prep.obs[w]) can0 = false;
      if (~sig_a[w] & prep.obs[w]) can1 = false;
      if (!can0 && !can1) break;
    }
    if (can0 || can1) {
      CandidateSub cand = make_base();
      const bool value =
          can0 && can1 ? estimator_->probability(target) >= 0.5 : can1;
      cand.rep = ReplacementFunction::constant(value);
      cand.pg_a = compute_pg_a(*netlist_, *estimator_, cand);
      cand.pg_b = compute_pg_b(*netlist_, *estimator_, cand);
      prep.const_cand = std::move(cand);
      if (all_zero(prep.obs)) prep.skip = true;  // nothing further here
    }
  } else if (all_zero(prep.obs)) {
    prep.skip = true;
  }
  return prep;
}

void CandidateFinder::match_site(GateId target, const FanoutRef* branch,
                                 const SitePrep& prep,
                                 std::span<const std::size_t> random_draws,
                                 std::vector<CandidateSub>* out) const {
  const int W = sim_->num_words();
  const auto sig_a = sim_->value(target);
  const std::vector<std::uint64_t>& obs = prep.obs;

  auto finish = [&](CandidateSub cand) {
    cand.pg_a = compute_pg_a(*netlist_, *estimator_, cand);
    cand.pg_b = compute_pg_b(*netlist_, *estimator_, cand);
    out->push_back(std::move(cand));
  };

  auto make_base = [&]() {
    CandidateSub cand;
    cand.target = target;
    if (branch != nullptr) {
      cand.branch = *branch;
      cand.cls = SubstClass::kIS2;
    } else {
      cand.cls = SubstClass::kOS2;
    }
    return cand;
  };

  // Forbidden region for sources: the faulty region of the site.
  std::vector<std::uint8_t> forbidden(netlist_->num_slots(), 0);
  const GateId entry = branch == nullptr ? target : branch->gate;
  forbidden[entry] = 1;
  for (GateId g : netlist_->tfo(entry)) forbidden[g] = 1;
  forbidden[target] = 1;  // substituting a by a is a no-op

  const std::vector<GateId> pool =
      build_pool(target, forbidden, random_draws);

  // --- 2-signal substitutions -------------------------------------------
  for (GateId b : pool) {
    const auto sig_b = sim_->value(b);
    if (agrees(sig_a, sig_b, obs, /*invert_b=*/false)) {
      CandidateSub cand = make_base();
      cand.rep = ReplacementFunction::signal(b, false);
      finish(std::move(cand));
    } else if (agrees(sig_a, sig_b, obs, /*invert_b=*/true)) {
      CandidateSub cand = make_base();
      cand.rep = ReplacementFunction::signal(b, true);
      finish(std::move(cand));
    }
  }

  // --- 3-signal substitutions (new 2-input library gate) -----------------
  if (!options_.resub.enable_three_subs) return;
  const auto& cells = netlist_->library().two_input_cells();
  int made = 0;
  const int b_limit = std::min<int>(options_.resub.three_sub_b_pool,
                                    static_cast<int>(pool.size()));
  for (int bi = 0; bi < b_limit && made < options_.resub.max_three_per_target;
       ++bi) {
    const GateId b = pool[static_cast<std::size_t>(bi)];
    const auto sig_b = sim_->value(b);
    for (GateId c : pool) {
      if (c == b) continue;
      const auto sig_c = sim_->value(c);
      for (CellId cell_id : cells) {
        const Cell& cell = netlist_->library().cell(cell_id);
        const TruthTable& f = cell.function;
        bool ok = true;
        for (int w = 0; w < W && ok; ++w) {
          const std::uint64_t bw = sig_b[static_cast<std::size_t>(w)];
          const std::uint64_t cw = sig_c[static_cast<std::size_t>(w)];
          std::uint64_t r = 0;
          if (f.bit(0)) r |= ~bw & ~cw;
          if (f.bit(1)) r |= bw & ~cw;
          if (f.bit(2)) r |= ~bw & cw;
          if (f.bit(3)) r |= bw & cw;
          if ((r ^ sig_a[static_cast<std::size_t>(w)]) &
              obs[static_cast<std::size_t>(w)])
            ok = false;
        }
        if (!ok) continue;
        // Skip degenerate functions (constant or single-input): the
        // 2-signal pass already covers those shapes more cheaply.
        if (!f.depends_on(0) || !f.depends_on(1)) continue;
        CandidateSub cand = make_base();
        cand.cls = branch == nullptr ? SubstClass::kOS3 : SubstClass::kIS3;
        cand.rep = ReplacementFunction::two_input(b, c, f);
        cand.new_cell = cell_id;
        finish(std::move(cand));
        if (++made >= options_.resub.max_three_per_target) break;
      }
      if (made >= options_.resub.max_three_per_target) break;
    }
  }

  // --- k-signal substitutions (new k-input library gate, k >= 3) ----------
  // Same signature-agreement filter as the pair classes, over ordered
  // divisor tuples from the (deterministic) pool. Every operand is drawn
  // from the ksub_b_pool prefix — unlike the 3-sub pass, letting the inner
  // operands range over the whole pool would cost pool^(k-1) tuples per
  // site, which is unaffordable at k >= 3 — with a per-site cap on top.
  // Word evaluation reuses the k-ary minterm expansion of
  // replacement_words.
  for (int k = 3; k <= options_.resub.max_divisors; ++k) {
    const auto& kcells = netlist_->library().cells_with_arity(k);
    if (kcells.empty()) continue;
    int kmade = 0;
    const int kb_limit = std::min<int>(options_.resub.ksub_b_pool,
                                       static_cast<int>(pool.size()));
    std::vector<GateId> divisors(static_cast<std::size_t>(k));
    std::vector<std::span<const std::uint64_t>> sigs(
        static_cast<std::size_t>(k));
    // Ordered combinations: divisor i+1 is drawn after divisor i in pool
    // order (cell pins are not symmetric in general, so every cell's own
    // function is evaluated against the tuple as-is; permutations of the
    // same tuple are reached via other tuples drawn later).
    std::vector<int> idx(static_cast<std::size_t>(k));
    auto eval_ok = [&](const TruthTable& f) {
      for (int w = 0; w < W; ++w) {
        std::uint64_t r = 0;
        const std::uint64_t minterms = 1ull << k;
        for (std::uint64_t m = 0; m < minterms; ++m) {
          if (!f.bit(m)) continue;
          std::uint64_t term = ~0ull;
          for (int v = 0; v < k; ++v) {
            const std::uint64_t dv =
                sigs[static_cast<std::size_t>(v)][static_cast<std::size_t>(w)];
            term &= ((m >> v) & 1) ? dv : ~dv;
          }
          r |= term;
        }
        if ((r ^ sig_a[static_cast<std::size_t>(w)]) &
            obs[static_cast<std::size_t>(w)])
          return false;
      }
      return true;
    };
    // Depth-first enumeration of index tuples over the kb_limit prefix with
    // all indices pairwise distinct, in lexicographic order — deterministic
    // for any thread count: the pool itself is thread-invariant.
    std::function<void(int)> enumerate = [&](int depth) {
      if (kmade >= options_.resub.max_k_per_target) return;
      if (depth == k) {
        for (CellId cell_id : kcells) {
          const Cell& cell = netlist_->library().cell(cell_id);
          const TruthTable& f = cell.function;
          bool degenerate = false;
          for (int v = 0; v < k; ++v)
            if (!f.depends_on(v)) degenerate = true;
          if (degenerate) continue;
          if (!eval_ok(f)) continue;
          CandidateSub cand = make_base();
          cand.cls = branch == nullptr ? SubstClass::kOSK : SubstClass::kISK;
          cand.rep = ReplacementFunction::cell(divisors, f);
          cand.new_cell = cell_id;
          finish(std::move(cand));
          if (++kmade >= options_.resub.max_k_per_target) return;
        }
        return;
      }
      for (int i = 0; i < kb_limit; ++i) {
        bool used = false;
        for (int d = 0; d < depth; ++d)
          if (idx[static_cast<std::size_t>(d)] == i) used = true;
        if (used) continue;
        idx[static_cast<std::size_t>(depth)] = i;
        divisors[static_cast<std::size_t>(depth)] =
            pool[static_cast<std::size_t>(i)];
        sigs[static_cast<std::size_t>(depth)] =
            sim_->value(pool[static_cast<std::size_t>(i)]);
        enumerate(depth + 1);
        if (kmade >= options_.resub.max_k_per_target) return;
      }
    };
    if (static_cast<int>(pool.size()) >= k) enumerate(0);
  }
}

std::vector<CandidateSub> CandidateFinder::find() {
  refresh_index();
  // Enumerate the sites in the serial harvest's order: for each signal, the
  // stem first, then every branch of multi-fanout stems.
  std::vector<Site> sites;
  for (GateId g : signal_gates_) {
    const std::span<const FanoutRef> fanouts = netlist_->fanouts(g);
    // Output substitutions: only cell stems (a PI cannot be replaced).
    if (netlist_->kind(g) == GateKind::kCell && !fanouts.empty())
      sites.push_back(Site{g, std::nullopt});
    // Input substitutions: individual branches of multi-fanout stems (the
    // paper regards single-fanout outputs as stem signals only).
    if (fanouts.size() > 1)
      for (const FanoutRef& br : fanouts) sites.push_back(Site{g, br});
  }

  // Pass 1 (parallel): observability masks, constant candidates, skip flags.
  std::vector<SitePrep> preps(sites.size());
  for_sites(sites.size(), [&](std::size_t i) {
    const Site& s = sites[i];
    preps[i] =
        prepare_site(s.target, s.branch ? &*s.branch : nullptr);
  });

  // Pass 2 (serial, site order): pre-draw the random pool indices so the
  // RNG stream matches the serial harvest exactly — it always drew
  // `random_pool_size` indices per non-skipped site, in site order.
  std::vector<std::vector<std::size_t>> draws(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (preps[i].skip) continue;
    for (int k = 0; k < options_.random_pool_size && !signal_gates_.empty();
         ++k)
      draws[i].push_back(rng_.below(signal_gates_.size()));
  }

  // Pass 3 (parallel): pool construction + signature matching per site,
  // each site writing its own output slice.
  std::vector<std::vector<CandidateSub>> slices(sites.size());
  for_sites(sites.size(), [&](std::size_t i) {
    const Site& s = sites[i];
    std::vector<CandidateSub>& slice = slices[i];
    if (preps[i].const_cand) slice.push_back(*preps[i].const_cand);
    if (preps[i].skip) return;
    match_site(s.target, s.branch ? &*s.branch : nullptr, preps[i], draws[i],
               &slice);
  });

  std::vector<CandidateSub> out;
  for (std::vector<CandidateSub>& slice : slices)
    for (CandidateSub& cand : slice) out.push_back(std::move(cand));
  std::sort(out.begin(), out.end(),
            [](const CandidateSub& x, const CandidateSub& y) {
              return x.preselect_gain() > y.preselect_gain();
            });
  last_truncated_ = 0;
  if (static_cast<int>(out.size()) > options_.max_candidates) {
    last_truncated_ =
        out.size() - static_cast<std::size_t>(options_.max_candidates);
    out.resize(static_cast<std::size_t>(options_.max_candidates));
  }
  return out;
}

}  // namespace powder
