#include "opt/journal.hpp"

#include <algorithm>

#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"
#include "util/fault_injection.hpp"

namespace powder {

SubstJournal::SubstJournal(Netlist* netlist) : netlist_(netlist) {
  POWDER_CHECK(netlist_ != nullptr);
}

void SubstJournal::set_trace(TraceSession* trace, MetricsRegistry* metrics) {
  trace_ = trace;
  if (metrics != nullptr) {
    m_commits_ = metrics->counter("powder_journal_commits_total",
                                  "Substitutions applied through the journal");
    m_rollbacks_ = metrics->counter(
        "powder_journal_rollbacks_total",
        "Commits undone through the journal's inverse deltas");
  } else {
    m_commits_ = nullptr;
    m_rollbacks_ = nullptr;
  }
}

const AppliedSub& SubstJournal::apply(const CandidateSub& sub) {
  TraceSpan span(trace_, "journal_commit", "journal");
  if (m_commits_ != nullptr) m_commits_->inc();
  AppliedSub applied = apply_substitution(*netlist_, sub);
  span.arg("rewired_pins", static_cast<long long>(applied.rewired_pins.size()));
  span.arg("removed_gates",
           static_cast<long long>(applied.removed_gates.size()));
  deltas_.push_back(applied);
  // Fault injection: corrupt the *recorded* inverse only — the forward
  // application and the returned summary stay intact, so the damage shows
  // up exactly where a journaling bug would: at rollback time.
  if (inject_fault(FaultInjector::Site::kCorruptDelta)) {
    AppliedSub& recorded = deltas_.back();
    if (!recorded.rewired_pins.empty()) {
      recorded.rewired_pins.front().old_driver =
          recorded.rewired_pins.front().new_driver;
    } else if (!recorded.removed_gates.empty()) {
      recorded.removed_gates.pop_back();
      recorded.removed_fanins.pop_back();
    }
  }
  return deltas_.back();
}

const AppliedSub& SubstJournal::apply_resize(GateId gate, CellId new_cell) {
  TraceSpan span(trace_, "journal_commit", "journal");
  if (m_commits_ != nullptr) m_commits_->inc();
  span.arg("resize", 1);
  POWDER_CHECK(netlist_->alive(gate));
  POWDER_CHECK(netlist_->kind(gate) == GateKind::kCell);
  AppliedSub applied;
  ResizedCell rc;
  rc.gate = gate;
  rc.old_cell = netlist_->cell_id(gate);
  rc.new_cell = new_cell;
  applied.area_delta = netlist_->library().cell(new_cell).area -
                       netlist_->library().cell(rc.old_cell).area;
  netlist_->set_cell(gate, new_cell);
  applied.resized_cells.push_back(rc);
  applied.changed_roots.push_back(gate);
  deltas_.push_back(applied);
  if (inject_fault(FaultInjector::Site::kCorruptDelta)) {
    // Same policy as apply(): corrupt the recorded inverse only.
    deltas_.back().resized_cells.front().old_cell = new_cell;
  }
  return deltas_.back();
}

std::vector<GateId> SubstJournal::undo(const AppliedSub& delta) {
  std::vector<GateId> roots;
  // 1) Revive the swept cone, deepest (last removed) first: each gate's
  //    fanins are alive again by the time it is revived.
  POWDER_CHECK(delta.removed_gates.size() == delta.removed_fanins.size());
  for (std::size_t i = delta.removed_gates.size(); i-- > 0;) {
    netlist_->revive_gate(delta.removed_gates[i], delta.removed_fanins[i]);
    roots.push_back(delta.removed_gates[i]);
  }
  // 2) Rewire the pins back to their previous drivers, newest first.
  for (std::size_t i = delta.rewired_pins.size(); i-- > 0;) {
    const RewiredPin& rp = delta.rewired_pins[i];
    netlist_->set_fanin(rp.sink, rp.pin, rp.old_driver);
    roots.push_back(rp.sink);
  }
  // 3) Swap re-sized cells back, newest first.
  for (std::size_t i = delta.resized_cells.size(); i-- > 0;) {
    const ResizedCell& rc = delta.resized_cells[i];
    netlist_->set_cell(rc.gate, rc.old_cell);
    roots.push_back(rc.gate);
  }
  // 4) Drop the inserted gate, now fanout-free again.
  if (delta.new_gate != kNullGate)
    netlist_->remove_single_gate(delta.new_gate);
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  return roots;
}

std::vector<GateId> SubstJournal::rollback_last() {
  POWDER_CHECK_MSG(!deltas_.empty(), "rollback on an empty journal");
  TraceSpan span(trace_, "journal_rollback", "journal");
  if (m_rollbacks_ != nullptr) m_rollbacks_->inc();
  const AppliedSub delta = std::move(deltas_.back());
  deltas_.pop_back();
  std::vector<GateId> roots = undo(delta);
  span.arg("changed_roots", static_cast<long long>(roots.size()));
  return roots;
}

std::vector<GateId> SubstJournal::rollback_to(std::size_t mark) {
  POWDER_CHECK_MSG(mark <= deltas_.size(),
                   "rollback_to mark beyond journal head");
  std::vector<GateId> roots;
  while (deltas_.size() > mark) {
    const std::vector<GateId> r = rollback_last();
    roots.insert(roots.end(), r.begin(), r.end());
  }
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  return roots;
}

}  // namespace powder
