#pragma once
// Application of resubstitution transforms (paper Definitions 1 and 2,
// generalized by the transform IR in opt/transform.hpp) to the netlist.
//
//   OS2(a,b):     replace stem a by existing signal b (optionally inverted,
//                 which inserts a library inverter).
//   IS2(a,b):     replace one fanout branch of a by b (optionally inverted).
//   OS3(a,b,c):   replace stem a by a NEW 2-input library gate g(b,c).
//   IS3(a,b,c):   replace one branch of a by a new 2-input gate g(b,c).
//   OSK/ISK:      stem/branch replaced by a new k-input gate (k >= 3).
//   FUNCRED:      stem merged into an equivalent existing signal.
//   OS2 by constant: special case used for unobservable stems.

#include <optional>
#include <vector>

#include "atpg/atpg.hpp"
#include "netlist/netlist.hpp"
#include "opt/transform.hpp"

namespace powder {

/// One rewired input pin, with enough context to rewire it back.
struct RewiredPin {
  GateId sink = kNullGate;
  int pin = 0;
  GateId old_driver = kNullGate;
  GateId new_driver = kNullGate;
};

/// One cell swap (gate re-sizing), with enough context to swap it back.
struct ResizedCell {
  GateId gate = kNullGate;
  CellId old_cell = kInvalidCell;
  CellId new_cell = kInvalidCell;
};

/// Result of applying a substitution. Besides the forward summary (what
/// changed, for cache updates) it carries the full inverse delta — rewired
/// pins with their previous drivers and the fanin lists of every swept
/// gate — which SubstJournal uses for checkpoint/rollback.
struct AppliedSub {
  std::vector<GateId> removed_gates;  ///< swept MFFC (tombstoned)
  /// Fanin list each removed gate had before the sweep (parallel to
  /// `removed_gates`); input to Netlist::revive_gate on rollback.
  std::vector<std::vector<GateId>> removed_fanins;
  /// Every rewired pin in application order, with its previous driver.
  std::vector<RewiredPin> rewired_pins;
  /// Cell swaps (journal-applied re-sizing commits), application order.
  std::vector<ResizedCell> resized_cells;
  GateId new_gate = kNullGate;        ///< inserted gate (OS3/IS3/inverted)
  /// Gates whose *function* changed and therefore seed re-simulation: the
  /// new gate (if any) and the rewired sinks.
  std::vector<GateId> changed_roots;
  double area_delta = 0.0;            ///< new area minus removed area
};

/// Applies `sub` to `netlist`. The caller must already have established
/// permissibility; this routine only performs the structural edit, sweeps
/// dead logic, and reports what changed. All validation (staleness, library
/// capabilities) happens before the first mutation, so a CheckError from
/// here leaves the netlist untouched.
AppliedSub apply_substitution(Netlist& netlist, const CandidateSub& sub);

/// Cheap structural validity: every referenced gate alive, the branch still
/// wired to the target, sources outside the faulty region (no cycles).
bool substitution_still_valid(const Netlist& netlist, const CandidateSub& sub);

}  // namespace powder
