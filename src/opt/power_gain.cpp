#include "opt/power_gain.hpp"

#include <span>

#include <bit>

#include "util/check.hpp"

namespace powder {

std::vector<std::uint64_t> replacement_words(const Simulator& sim,
                                             const ReplacementFunction& rep) {
  const int W = sim.num_words();
  std::vector<std::uint64_t> out(static_cast<std::size_t>(W), 0);
  switch (rep.kind) {
    case ReplacementFunction::Kind::kConstant:
      if (rep.constant_value)
        for (auto& w : out) w = ~0ull;
      break;
    case ReplacementFunction::Kind::kSignal: {
      const auto vb = sim.value(rep.b);
      for (int w = 0; w < W; ++w)
        out[static_cast<std::size_t>(w)] =
            rep.invert_b ? ~vb[static_cast<std::size_t>(w)]
                         : vb[static_cast<std::size_t>(w)];
      break;
    }
    case ReplacementFunction::Kind::kTwoInput: {
      const auto vb = sim.value(rep.b);
      const auto vc = sim.value(rep.c);
      const TruthTable& f = rep.two_input_fn;
      for (int w = 0; w < W; ++w) {
        std::uint64_t b = vb[static_cast<std::size_t>(w)];
        std::uint64_t c = vc[static_cast<std::size_t>(w)];
        if (rep.invert_b) b = ~b;
        if (rep.invert_c) c = ~c;
        std::uint64_t r = 0;
        if (f.bit(0)) r |= ~b & ~c;
        if (f.bit(1)) r |= b & ~c;
        if (f.bit(2)) r |= ~b & c;
        if (f.bit(3)) r |= b & c;
        out[static_cast<std::size_t>(w)] = r;
      }
      break;
    }
    case ReplacementFunction::Kind::kCell: {
      // k-ary word evaluation: OR together one AND-term per onset minterm.
      const int k = static_cast<int>(rep.divisors.size());
      std::vector<std::span<const std::uint64_t>> vals;
      vals.reserve(static_cast<std::size_t>(k));
      for (const GateId d : rep.divisors) vals.push_back(sim.value(d));
      const TruthTable& f = rep.two_input_fn;
      const std::uint64_t minterms = 1ull << k;
      for (int w = 0; w < W; ++w) {
        std::uint64_t r = 0;
        for (std::uint64_t m = 0; m < minterms; ++m) {
          if (!f.bit(m)) continue;
          std::uint64_t term = ~0ull;
          for (int v = 0; v < k; ++v) {
            const std::uint64_t dv =
                vals[static_cast<std::size_t>(v)][static_cast<std::size_t>(w)];
            term &= ((m >> v) & 1) ? dv : ~dv;
          }
          r |= term;
        }
        out[static_cast<std::size_t>(w)] = r;
      }
      break;
    }
  }
  return out;
}

double words_activity(std::span<const std::uint64_t> words) {
  std::uint64_t ones = 0;
  for (std::uint64_t w : words)
    ones += static_cast<std::uint64_t>(std::popcount(w));
  const double p =
      static_cast<double>(ones) / (64.0 * static_cast<double>(words.size()));
  return 2.0 * p * (1.0 - p);
}

namespace {

/// True when the substitution removes the whole dominated region of the
/// target (stem substitution, or the branch is the stem's only fanout).
/// When the replacement itself reads the target (e.g. rewiring a branch of
/// `a` to an inverter of `a`), the target stays alive and nothing dies.
bool removes_dominated_region(const Netlist& netlist,
                              const CandidateSub& sub) {
  for (int i = 0; i < sub.rep.num_sources(); ++i)
    if (sub.rep.source(i) == sub.target) return false;
  if (!sub.branch.has_value()) return true;
  return netlist.num_fanouts(sub.target) == 1;
}

/// The replacement's divisor set, for MFFC keep-alive computations.
std::vector<GateId> replacement_sources(const CandidateSub& sub) {
  std::vector<GateId> keep_alive;
  keep_alive.reserve(static_cast<std::size_t>(sub.rep.num_sources()));
  for (int i = 0; i < sub.rep.num_sources(); ++i)
    keep_alive.push_back(sub.rep.source(i));
  return keep_alive;
}

}  // namespace

double compute_pg_a(const Netlist& netlist, const PowerModel& est,
                    const CandidateSub& sub) {
  if (netlist.kind(sub.target) != GateKind::kCell ||
      !removes_dominated_region(netlist, sub)) {
    // Input substitution on a multi-fanout stem (or a PI driver): only the
    // branch pin's capacitance is unloaded; nothing is pruned.
    if (sub.branch.has_value())
      return netlist.pin_cap(sub.branch->gate, sub.branch->pin) *
             est.activity(sub.target);
    // Stem substitution of a PI signal: the PI remains, its load goes away.
    return netlist.signal_cap(sub.target) * est.activity(sub.target);
  }

  // Dominated-region removal (Eq. 3): the MFFC of the target dies — except
  // for gates the replacement itself keeps alive (its sources may sit
  // inside the cone).
  const std::vector<GateId> cone =
      netlist.mffc(sub.target, replacement_sources(sub));
  std::vector<std::uint8_t> in_cone(netlist.num_slots(), 0);
  for (GateId g : cone) in_cone[g] = 1;

  double gain = 0.0;
  // First sum: switched capacitance of the pruned gates' signals. The
  // target's own term uses its current load, which the substituting signal
  // inherits (PG_B charges it back at the new activity).
  for (GateId g : cone) gain += netlist.signal_cap(g) * est.activity(g);
  // Second sum: pins of surviving signals that fed the cone.
  for (GateId g : cone) {
    const std::span<const GateId> fanins = netlist.fanins(g);
    for (int pin = 0; pin < static_cast<int>(fanins.size()); ++pin) {
      const GateId fi = fanins[static_cast<std::size_t>(pin)];
      if (!in_cone[fi])
        gain += netlist.pin_cap(g, pin) * est.activity(fi);
    }
  }
  return gain;
}

double compute_pg_b(const Netlist& netlist, const PowerModel& est,
                    const CandidateSub& sub) {
  const CellLibrary& lib = netlist.library();
  // Load that moves onto the substituting signal.
  const double moved_cap =
      sub.branch.has_value()
          ? netlist.pin_cap(sub.branch->gate, sub.branch->pin)
          : netlist.signal_cap(sub.target);

  switch (sub.rep.kind) {
    case ReplacementFunction::Kind::kConstant:
      return 0.0;  // a constant never switches
    case ReplacementFunction::Kind::kSignal: {
      const double eb = est.activity(sub.rep.b);
      if (!sub.rep.invert_b) return -moved_cap * eb;
      // Inserted inverter: b gains the inverter pin; the inverter output
      // (same activity as b: E(s) is phase-symmetric) drives the load.
      const Cell& inv = lib.cell(lib.inverter());
      return -(inv.pins[0].input_cap * eb + moved_cap * eb);
    }
    case ReplacementFunction::Kind::kTwoInput:
    case ReplacementFunction::Kind::kCell: {
      const Cell& cell = lib.cell(sub.new_cell);
      const double e_new =
          words_activity(replacement_words(est.simulator(), sub.rep));
      double cost = moved_cap * e_new;
      for (int i = 0; i < sub.rep.num_sources(); ++i)
        cost += cell.pins[static_cast<std::size_t>(i)].input_cap *
                est.activity(sub.rep.source(i));
      return -cost;
    }
  }
  POWDER_CHECK(false);
}

double compute_area_gain(const Netlist& netlist, const CandidateSub& sub) {
  const CellLibrary& lib = netlist.library();
  double gain = 0.0;
  // Inserted gate.
  switch (sub.rep.kind) {
    case ReplacementFunction::Kind::kConstant:
      gain -= lib.cell(sub.rep.constant_value ? lib.const1() : lib.const0())
                  .area;
      break;
    case ReplacementFunction::Kind::kSignal:
      if (sub.rep.invert_b) gain -= lib.cell(lib.inverter()).area;
      break;
    case ReplacementFunction::Kind::kTwoInput:
    case ReplacementFunction::Kind::kCell:
      gain -= lib.cell(sub.new_cell).area;
      break;
  }
  // Removed cone (only when the whole dominated region dies).
  if (netlist.kind(sub.target) == GateKind::kCell &&
      removes_dominated_region(netlist, sub)) {
    for (GateId g : netlist.mffc(sub.target, replacement_sources(sub)))
      gain += netlist.cell_of(g).area;
  }
  return gain;
}

namespace {

/// Zero-delay PG_C: non-destructive trial re-simulation of the TFO region
/// (paper §3.5) against the estimator's cached activities.
double zero_delay_pg_c(const Netlist& netlist, const PowerModel& est,
                       const CandidateSub& sub) {
  const std::vector<std::uint64_t> rep_words =
      replacement_words(est.simulator(), sub.rep);
  const FanoutRef* branch =
      sub.branch.has_value() ? &*sub.branch : nullptr;
  const auto changed =
      est.simulator().trial_new_probs(sub.target, branch, rep_words);
  double gain = 0.0;
  for (const auto& [g, new_p] : changed) {
    if (netlist.kind(g) == GateKind::kOutput) continue;
    const double new_e = 2.0 * new_p * (1.0 - new_p);
    gain += netlist.signal_cap(g) * (est.activity(g) - new_e);
  }
  return gain;
}

/// Timed PG_C: apply the substitution to a scratch copy (the same pattern
/// as the optimizer's trial STA), re-run the event-driven estimate, and
/// book the exact glitch-inclusive delta minus the PG_A + PG_B
/// already carried by `sub` — so pg_a + pg_b + pg_c is the measured
/// timed power saving.
double timed_pg_c(const Netlist& netlist, const TimedPowerModel& est,
                  const CandidateSub& sub) {
  Netlist scratch = netlist;  // copies drop observers: mutations stay local
  try {
    (void)apply_substitution(scratch, sub);
  } catch (const CheckError&) {
    // Structurally inapplicable on the scratch copy (stale candidate);
    // report a hopeless gain so the loop discards it.
    return -est.total_power();
  }
  const GlitchEstimate after =
      estimate_glitch_power(scratch, est.glitch_options());
  return (est.total_power() - after.timed_power) - sub.pg_a - sub.pg_b;
}

}  // namespace

double compute_pg_c(const Netlist& netlist, const PowerModel& est,
                    const CandidateSub& sub) {
  if (est.kind() == PowerModelKind::kTimed)
    return timed_pg_c(netlist, static_cast<const TimedPowerModel&>(est), sub);
  return zero_delay_pg_c(netlist, est, sub);
}

}  // namespace powder
