#include "opt/resize.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "opt/journal.hpp"
#include "power/power.hpp"
#include "sim/simulator.hpp"
#include "timing/incremental_timing.hpp"
#include "timing/timing.hpp"
#include "util/check.hpp"

namespace powder {

namespace {

/// Cells grouped by (arity, function): the size alternatives of each gate.
std::unordered_map<std::string, std::vector<CellId>> size_groups(
    const CellLibrary& lib) {
  std::unordered_map<std::string, std::vector<CellId>> groups;
  for (CellId id = 0; id < lib.num_cells(); ++id) {
    const Cell& c = lib.cell(id);
    groups[c.function.to_hex() + "/" + std::to_string(c.num_inputs())]
        .push_back(id);
  }
  return groups;
}

/// Power of the netlist given fixed activities (resizing does not change
/// any logic value, so activities are invariant).
double power_with_caps(const Netlist& nl, const PowerEstimator& est) {
  double total = 0.0;
  for (GateId g = 0; g < nl.num_slots(); ++g)
    if (nl.alive(g) && nl.kind(g) != GateKind::kOutput)
      total += nl.signal_cap(g) * est.activity(g);
  return total;
}

}  // namespace

ResizeReport resize_gates(Netlist* netlist, const ResizeOptions& options) {
  POWDER_CHECK(netlist != nullptr);
  ResizeReport report;
  const CellLibrary& lib = netlist->library();
  const auto groups = size_groups(lib);

  Simulator sim(*netlist, options.num_patterns, options.pi_probs,
                options.seed);
  PowerEstimator est(&sim);
  SubstJournal journal(netlist);
  IncrementalTiming timing(*netlist);

  report.initial_power = power_with_caps(*netlist, est);
  report.initial_area = netlist->total_area();
  report.initial_delay = timing.circuit_delay();
  const double limit = options.delay_limit_factor < 0.0
                           ? std::numeric_limits<double>::infinity()
                           : report.initial_delay *
                                 options.delay_limit_factor;
  if (std::isfinite(limit)) timing.set_constraint(limit);

  // Resizing must never change logic: snapshot the primary-output
  // signatures once and re-check them after every journal commit. A
  // mismatch (library truth-table bug, injected fault) rolls the commit
  // back instead of emitting a miscompile.
  auto collect_po = [&]() {
    std::vector<std::uint64_t> po_sig;
    for (GateId o : netlist->outputs()) {
      const auto v = sim.value(o);
      po_sig.insert(po_sig.end(), v.begin(), v.end());
    }
    return po_sig;
  };
  const std::vector<std::uint64_t> po_ref = collect_po();
  // Commits `gate` -> `cell` through the journal and verifies the PO
  // signatures; returns false (and rolls back) on a guard failure.
  auto guarded_commit = [&](GateId gate, CellId cell) {
    journal.apply_resize(gate, cell);
    est.refresh();
    if (collect_po() == po_ref) return true;
    journal.rollback_last();
    est.refresh();
    ++report.guard_rollbacks;
    return false;
  };

  auto alternatives = [&](GateId g) -> const std::vector<CellId>* {
    const Cell& c = netlist->cell_of(g);
    const auto it = groups.find(c.function.to_hex() + "/" +
                                std::to_string(c.num_inputs()));
    return it == groups.end() || it->second.size() < 2 ? nullptr
                                                       : &it->second;
  };

  for (int round = 0; round < options.max_rounds; ++round) {
    bool changed = false;

    // Phase 1: power downsizing. The power effect of a swap is local —
    // only the fanin signals' loads change — so the candidate ranking is
    // analytic; the (global) delay effect is checked with the incremental
    // STA (each trial swap dirties a handful of gates, not the circuit).
    // Explicit copy: the trial set_cell swaps below publish deltas while
    // this loop runs (the cached order itself survives cell swaps, but the
    // snapshot keeps the iteration independent of cache refreshes).
    const std::vector<GateId> topo = netlist->topo_order();
    for (GateId g : topo) {
      if (netlist->kind(g) != GateKind::kCell) continue;
      const auto* alts = alternatives(g);
      if (alts == nullptr) continue;
      const CellId current = netlist->cell_id(g);
      const Cell& cur_cell = lib.cell(current);
      CellId best = current;
      double best_delta = -1e-12;  // require strict improvement
      for (CellId alt : *alts) {
        if (alt == current) continue;
        const Cell& alt_cell = lib.cell(alt);
        double delta = 0.0;  // power saved by the swap
        for (int pin = 0; pin < cur_cell.num_inputs(); ++pin)
          delta += (cur_cell.pins[static_cast<std::size_t>(pin)].input_cap -
                    alt_cell.pins[static_cast<std::size_t>(pin)].input_cap) *
                   est.activity(
                       netlist->fanin(g, pin));
        if (delta <= best_delta) continue;
        netlist->set_cell(g, alt);
        if (timing.circuit_delay() <= limit + 1e-9) {
          best_delta = delta;
          best = alt;
        }
        netlist->set_cell(g, current);
      }
      if (best != current && guarded_commit(g, best)) {
        ++report.downsized;
        changed = true;
      }
    }

    // Phase 2: timing recovery by upsizing along the critical path (only
    // needed if the entry netlist violated the limit).
    int recovery_guard = 0;
    while (std::isfinite(limit) && timing.circuit_delay() > limit + 1e-9 &&
           recovery_guard++ < 4 * netlist->num_cells()) {
      // Most negative slack gate with an upsizing alternative.
      GateId worst = kNullGate;
      double worst_slack = 0.0;
      for (GateId g = 0; g < netlist->num_slots(); ++g) {
        if (!netlist->alive(g) || netlist->kind(g) != GateKind::kCell)
          continue;
        if (alternatives(g) == nullptr) continue;
        const double s = timing.slack(g);
        if (worst == kNullGate || s < worst_slack) {
          worst = g;
          worst_slack = s;
        }
      }
      if (worst == kNullGate) break;
      const CellId current = netlist->cell_id(worst);
      CellId best = current;
      double best_delay = timing.circuit_delay();
      for (CellId alt : *alternatives(worst)) {
        if (alt == current) continue;
        netlist->set_cell(worst, alt);
        const double d = timing.circuit_delay();
        if (d < best_delay - 1e-12) {
          best_delay = d;
          best = alt;
        }
        netlist->set_cell(worst, current);
      }
      if (best == current) break;  // no further improvement possible
      if (!guarded_commit(worst, best)) break;
      ++report.upsized;
      changed = true;
    }

    if (!changed) break;
  }

  report.final_power = power_with_caps(*netlist, est);
  report.final_area = netlist->total_area();
  report.final_delay = timing.circuit_delay();
  return report;
}

}  // namespace powder
