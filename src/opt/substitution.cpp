#include "opt/substitution.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace powder {

const char* resub_class_name(ResubClass c) {
  switch (c) {
    case ResubClass::kOS2: return "OS2";
    case ResubClass::kIS2: return "IS2";
    case ResubClass::kOS3: return "OS3";
    case ResubClass::kIS3: return "IS3";
    case ResubClass::kOSK: return "OSK";
    case ResubClass::kISK: return "ISK";
    case ResubClass::kFuncRed: return "FUNCRED";
  }
  return "?";
}

const char* subst_class_name(SubstClass c) { return resub_class_name(c); }

namespace {

/// Builds the substituting signal in the netlist: the existing signal, an
/// inserted inverter, an inserted constant gate, or the new 2-input gate.
GateId build_replacement_driver(Netlist& netlist, const CandidateSub& sub,
                                AppliedSub* applied) {
  const CellLibrary& lib = netlist.library();
  switch (sub.rep.kind) {
    case ReplacementFunction::Kind::kConstant: {
      const CellId cid =
          sub.rep.constant_value ? lib.const1() : lib.const0();
      POWDER_CHECK_MSG(cid != kInvalidCell, "library lacks constant cells");
      const GateId g = netlist.add_gate(cid, {});
      applied->new_gate = g;
      applied->area_delta += lib.cell(cid).area;
      return g;
    }
    case ReplacementFunction::Kind::kSignal: {
      if (!sub.rep.invert_b) return sub.rep.b;
      const CellId inv = lib.inverter();
      POWDER_CHECK_MSG(inv != kInvalidCell, "library lacks an inverter");
      const GateId g = netlist.add_gate(inv, {sub.rep.b});
      applied->new_gate = g;
      applied->area_delta += lib.cell(inv).area;
      return g;
    }
    case ReplacementFunction::Kind::kTwoInput: {
      POWDER_CHECK(sub.new_cell != kInvalidCell);
      POWDER_CHECK(!sub.rep.invert_b && !sub.rep.invert_c);
      const GateId g =
          netlist.add_gate(sub.new_cell, {sub.rep.b, sub.rep.c});
      applied->new_gate = g;
      applied->area_delta += lib.cell(sub.new_cell).area;
      return g;
    }
    case ReplacementFunction::Kind::kCell: {
      POWDER_CHECK(sub.new_cell != kInvalidCell);
      const GateId g = netlist.add_gate(sub.new_cell, sub.rep.divisors);
      applied->new_gate = g;
      applied->area_delta += lib.cell(sub.new_cell).area;
      return g;
    }
  }
  POWDER_CHECK(false);
}

}  // namespace

bool substitution_still_valid(const Netlist& netlist,
                              const CandidateSub& sub) {
  if (sub.target >= netlist.num_slots() || !netlist.alive(sub.target))
    return false;
  if (sub.branch.has_value()) {
    const FanoutRef& br = *sub.branch;
    if (br.gate >= netlist.num_slots() || !netlist.alive(br.gate))
      return false;
    if (br.pin >= netlist.num_fanins(br.gate) ||
        netlist.fanin(br.gate, br.pin) != sub.target)
      return false;
  } else {
    // OS: target must be a removable cell gate that still has fanout.
    if (netlist.kind(sub.target) != GateKind::kCell) return false;
    if (netlist.fanouts(sub.target).empty()) return false;
  }
  // Sources must be alive and outside the faulty region.
  const GateId entry =
      sub.branch.has_value() ? sub.branch->gate : sub.target;
  auto source_ok = [&](GateId s) {
    if (s >= netlist.num_slots() || !netlist.alive(s)) return false;
    if (s == entry) return false;
    return !netlist.in_tfo(entry, s);
  };
  for (int i = 0; i < sub.rep.num_sources(); ++i) {
    const GateId s = sub.rep.source(i);
    if (!source_ok(s)) return false;
    // For a stem substitution the sources must also differ from the stem
    // itself (replacing a by a is a no-op).
    if (!sub.branch.has_value() && s == sub.target) return false;
  }
  // Rewiring a branch of a back to a itself is a no-op too.
  if (sub.branch.has_value() &&
      sub.rep.kind == ReplacementFunction::Kind::kSignal &&
      sub.rep.b == sub.target && !sub.rep.invert_b)
    return false;
  return true;
}

AppliedSub apply_substitution(Netlist& netlist, const CandidateSub& sub) {
  POWDER_CHECK_MSG(substitution_still_valid(netlist, sub),
                   "applying a stale substitution");
  // Validate library capabilities before the first structural edit so that
  // a CheckError never leaves the netlist half-modified.
  {
    const CellLibrary& lib = netlist.library();
    switch (sub.rep.kind) {
      case ReplacementFunction::Kind::kConstant:
        POWDER_CHECK_MSG((sub.rep.constant_value ? lib.const1()
                                                 : lib.const0()) !=
                             kInvalidCell,
                         "library lacks constant cells");
        break;
      case ReplacementFunction::Kind::kSignal:
        if (sub.rep.invert_b)
          POWDER_CHECK_MSG(lib.inverter() != kInvalidCell,
                           "library lacks an inverter");
        break;
      case ReplacementFunction::Kind::kTwoInput:
        POWDER_CHECK(sub.new_cell != kInvalidCell);
        POWDER_CHECK(!sub.rep.invert_b && !sub.rep.invert_c);
        break;
      case ReplacementFunction::Kind::kCell:
        POWDER_CHECK(sub.new_cell != kInvalidCell);
        POWDER_CHECK(!sub.rep.divisors.empty());
        break;
    }
  }
  AppliedSub applied;
  const GateId driver = build_replacement_driver(netlist, sub, &applied);

  if (sub.branch.has_value()) {
    const GateId old_driver =
        netlist.fanin(sub.branch->gate, sub.branch->pin);
    netlist.set_fanin(sub.branch->gate, sub.branch->pin, driver);
    applied.rewired_pins.push_back(
        RewiredPin{sub.branch->gate, sub.branch->pin, old_driver, driver});
    applied.changed_roots.push_back(sub.branch->gate);
  } else {
    // Collect the sinks being rewired: their simulated values can change
    // (within the target's ODC set), so they seed re-simulation.
    for (const FanoutRef& br : netlist.fanouts(sub.target)) {
      applied.rewired_pins.push_back(
          RewiredPin{br.gate, br.pin, sub.target, driver});
      if (std::find(applied.changed_roots.begin(), applied.changed_roots.end(),
                    br.gate) == applied.changed_roots.end())
        applied.changed_roots.push_back(br.gate);
    }
    netlist.replace_all_fanouts(sub.target, driver);
  }
  if (applied.new_gate != kNullGate)
    applied.changed_roots.insert(applied.changed_roots.begin(),
                                 applied.new_gate);

  // Sweep logic that lost its last fanout (the paper's Dom(a) removal; for
  // IS this only triggers when the rewired branch was the last one).
  double removed_area = 0.0;
  if (netlist.kind(sub.target) == GateKind::kCell &&
      netlist.fanouts(sub.target).empty()) {
    applied.removed_gates =
        netlist.remove_gate_recursive(sub.target, &applied.removed_fanins);
    for (GateId g : applied.removed_gates)
      removed_area += netlist.library().cell(netlist.cell_id(g)).area;
  }
  applied.area_delta -= removed_area;
  return applied;
}

}  // namespace powder
