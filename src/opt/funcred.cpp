#include "opt/funcred.hpp"

#include <span>
#include <unordered_map>

#include "opt/substitution.hpp"
#include "util/check.hpp"

namespace powder {
namespace {

/// FNV-1a over a signature's words — the same construction the candidate
/// index uses, so funcred groups exactly the signals the harvest would.
std::uint64_t words_hash(std::span<const std::uint64_t> words, bool invert) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint64_t w : words) {
    if (invert) w = ~w;
    for (int i = 0; i < 8; ++i) {
      h ^= (w >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  }
  return h;
}

bool words_equal(std::span<const std::uint64_t> a,
                 std::span<const std::uint64_t> b, bool invert_b) {
  for (std::size_t w = 0; w < a.size(); ++w)
    if (a[w] != (invert_b ? ~b[w] : b[w])) return false;
  return true;
}

}  // namespace

FuncredStats functional_reduction(Netlist& netlist, Simulator& sim,
                                  SubstJournal& journal,
                                  const FuncredHooks& hooks,
                                  std::vector<FuncredCommit>* commits) {
  POWDER_CHECK(hooks.prove != nullptr);
  FuncredStats stats;

  for (int round = 0;; ++round) {
    stats.rounds = round + 1;
    sim.refresh();

    // Live signals (PIs + cells) ascending, with signature hashes of both
    // phases. Buckets inherit the ascending order, making the lowest-id
    // member of every signature class its canonical representative.
    std::vector<GateId> signals;
    for (GateId g = 0; g < netlist.num_slots(); ++g) {
      if (!netlist.alive(g)) continue;
      const GateKind kind = netlist.kind(g);
      if (kind == GateKind::kInput || kind == GateKind::kCell)
        signals.push_back(g);
    }
    std::unordered_map<std::uint64_t, std::vector<GateId>> buckets;
    std::unordered_map<GateId, std::uint64_t> inv_hash;
    for (const GateId g : signals) {
      const auto words = sim.value(g);
      buckets[words_hash(words, false)].push_back(g);
      inv_hash[g] = words_hash(words, true);
    }

    int merges_this_round = 0;
    int ordinal = 0;
    for (const GateId g : signals) {
      // Only cell stems with fanout can be merged away.
      if (!netlist.alive(g) || netlist.kind(g) != GateKind::kCell) continue;
      if (netlist.fanouts(g).empty()) continue;

      // Nominate the lowest-id earlier signal with an equal (preferred) or
      // complementary signature. Buckets are stale after a mid-round merge;
      // the exact word compare below re-checks against fresh values. A
      // representative inside the target's transitive fanout is excluded —
      // rewiring g's sinks to it would close a combinational cycle (the
      // same exclusion the harvest applies via its forbidden region).
      GateId rep = kNullGate;
      bool invert = false;
      std::vector<std::uint8_t> tfo_flags;
      const auto in_tfo = [&](GateId e) {
        if (tfo_flags.empty()) {
          tfo_flags.assign(netlist.num_slots(), 0);
          tfo_flags[g] = 1;
          for (const GateId t : netlist.tfo(g)) tfo_flags[t] = 1;
        }
        return tfo_flags[e] != 0;
      };
      const auto pick = [&](std::uint64_t h, bool inv) {
        const auto it = buckets.find(h);
        if (it == buckets.end()) return;
        for (const GateId e : it->second) {
          if (e >= g) break;
          if (rep != kNullGate && e >= rep) break;
          if (!netlist.alive(e)) continue;
          if (in_tfo(e)) continue;
          rep = e;
          invert = inv;
          break;
        }
      };
      const auto g_words = sim.value(g);
      pick(words_hash(g_words, false), false);
      pick(inv_hash[g], true);
      if (rep == kNullGate) continue;

      // An inverted merge materializes INV(rep) for g's sinks; if g already
      // *is* a lone inverter on rep the rewrite is an identity that would
      // re-nominate its own replacement every round, forever — skip it.
      if (invert) {
        const auto& fi = netlist.fanins(g);
        if (fi.size() == 1 && fi[0] == rep) {
          const TruthTable& f =
              netlist.library().cell(netlist.cell_id(g)).function;
          if (f.num_vars() == 1 && f.bit(0) && !f.bit(1)) continue;
        }
      }

      CandidateSub cand;
      cand.cls = ResubClass::kFuncRed;
      cand.target = g;
      cand.rep = ReplacementFunction::signal(rep, invert);
      if (!substitution_still_valid(netlist, cand)) continue;
      if (!words_equal(g_words, sim.value(rep), invert)) {
        ++stats.sim_rejected;  // hash collision or stale bucket
        continue;
      }

      ++stats.pairs_tested;
      if (!hooks.prove(cand)) {
        ++stats.proof_rejected;
        continue;
      }

      AppliedSub applied;
      try {
        applied = journal.apply(cand);
      } catch (const CheckError&) {
        continue;  // raced with an earlier merge's sweep; proven but stale
      }
      sim.refresh();
      if (hooks.resync) hooks.resync();
      if (hooks.guard_ok && !hooks.guard_ok()) {
        ++stats.guard_rollbacks;
        journal.rollback_last();
        sim.refresh();
        if (hooks.resync) hooks.resync();
        continue;
      }

      const FuncredCommit commit{cand, applied, round, ordinal};
      if (hooks.on_commit) hooks.on_commit(commit);
      if (commits != nullptr) commits->push_back(commit);
      ++ordinal;
      ++stats.merged;
      ++merges_this_round;
    }

    if (merges_this_round == 0) break;
  }
  return stats;
}

}  // namespace powder
