// Implementation of the stable library surface: powder::optimize and the
// JSON serialization of PowderReport.

#include <cmath>
#include <sstream>

#include "opt/powder.hpp"
#include "util/error.hpp"

namespace powder {

namespace {

const char* kClassNames[kNumResubClasses] = {"OS2", "IS2",  "OS3",    "IS3",
                                             "OSK", "ISK", "FUNCRED"};

/// JSON has no inf/nan; the delay limit is +inf when timing is off.
void append_number(std::ostringstream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << "null";
  }
}

void append_field(std::ostringstream& os, const char* name, double v,
                  bool* first) {
  if (!*first) os << ",";
  *first = false;
  os << "\"" << name << "\":";
  append_number(os, v);
}

void append_field(std::ostringstream& os, const char* name, long v,
                  bool* first) {
  if (!*first) os << ",";
  *first = false;
  os << "\"" << name << "\":" << v;
}

void append_field(std::ostringstream& os, const char* name, int v,
                  bool* first) {
  append_field(os, name, static_cast<long>(v), first);
}

void append_field(std::ostringstream& os, const char* name, bool v,
                  bool* first) {
  if (!*first) os << ",";
  *first = false;
  os << "\"" << name << "\":" << (v ? "true" : "false");
}

}  // namespace

std::string PowderReport::to_json() const {
  std::ostringstream os;
  os.precision(17);
  bool first = true;
  os << "{";
  // First key by contract (DESIGN.md §11.4): consumers dispatch on the
  // document version before touching anything else.
  append_field(os, "schema_version", kReportSchemaVersion, &first);
  append_field(os, "initial_power", initial_power, &first);
  append_field(os, "final_power", final_power, &first);
  append_field(os, "initial_area", initial_area, &first);
  append_field(os, "final_area", final_area, &first);
  append_field(os, "initial_delay", initial_delay, &first);
  append_field(os, "final_delay", final_delay, &first);
  append_field(os, "delay_limit", delay_limit, &first);
  append_field(os, "power_reduction_percent", power_reduction_percent(),
               &first);
  append_field(os, "area_reduction_percent", area_reduction_percent(), &first);
  append_field(os, "substitutions_applied", substitutions_applied, &first);
  append_field(os, "candidates_harvested", candidates_harvested, &first);
  append_field(os, "rejected_by_delay", rejected_by_delay, &first);
  append_field(os, "rejected_by_atpg", rejected_by_atpg, &first);
  append_field(os, "rejected_stale", rejected_stale, &first);
  append_field(os, "outer_iterations", outer_iterations, &first);
  append_field(os, "cpu_seconds", cpu_seconds, &first);

  os << ",\"by_class\":{";
  for (std::size_t i = 0; i < by_class.size(); ++i) {
    if (i != 0) os << ",";
    os << "\"" << kClassNames[i] << "\":{";
    bool cf = true;
    append_field(os, "applied", by_class[i].applied, &cf);
    append_field(os, "power_delta", by_class[i].power_delta, &cf);
    append_field(os, "area_delta", by_class[i].area_delta, &cf);
    os << "}";
  }
  os << "}";

  os << ",\"diagnostics\":{";
  bool df = true;
  append_field(os, "guard_rollbacks", diagnostics.guard_rollbacks, &df);
  append_field(os, "final_check_rollbacks", diagnostics.final_check_rollbacks,
               &df);
  append_field(os, "apply_failures", diagnostics.apply_failures, &df);
  append_field(os, "guard_failed", diagnostics.guard_failed, &df);
  append_field(os, "budget_exhausted", diagnostics.budget_exhausted, &df);
  append_field(os, "deadline_hit", diagnostics.deadline_hit, &df);
  append_field(os, "degradation_events", diagnostics.degradation_events, &df);
  append_field(os, "retries", diagnostics.retries, &df);
  append_field(os, "watchdog_requeues", diagnostics.watchdog_requeues, &df);
  append_field(os, "checkpoint_frames", diagnostics.checkpoint_frames, &df);
  append_field(os, "resume_replayed", diagnostics.resume_replayed, &df);
  append_field(os, "checkpoint_disabled", diagnostics.checkpoint_disabled,
               &df);
  append_field(os, "mem_limit_hit", diagnostics.mem_limit_hit, &df);
  append_field(os, "threads_used", diagnostics.threads_used, &df);
  append_field(os, "proof_jobs_enqueued", diagnostics.proof_jobs_enqueued,
               &df);
  append_field(os, "speculative_proof_hits",
               diagnostics.speculative_proof_hits, &df);
  append_field(os, "stale_proofs_dropped", diagnostics.stale_proofs_dropped,
               &df);
  append_field(os, "inline_proofs", diagnostics.inline_proofs, &df);
  append_field(os, "deltas_published", diagnostics.deltas_published, &df);
  append_field(os, "observer_notifications",
               diagnostics.observer_notifications, &df);
  append_field(os, "sta_incremental_visits",
               diagnostics.sta_incremental_visits, &df);
  append_field(os, "sta_full_equiv_visits",
               diagnostics.sta_full_equiv_visits, &df);
  append_field(os, "candidate_gates_refreshed",
               diagnostics.candidate_gates_refreshed, &df);
  append_field(os, "candidate_index_size", diagnostics.candidate_index_size,
               &df);
  append_field(os, "pin_slabs_allocated", diagnostics.pin_slabs_allocated,
               &df);
  append_field(os, "pin_slabs_recycled", diagnostics.pin_slabs_recycled, &df);
  append_field(os, "name_pool_bytes", diagnostics.name_pool_bytes, &df);
  append_field(os, "peak_rss_bytes", diagnostics.peak_rss_bytes, &df);
  os << ",\"windowing\":{";
  bool wf = true;
  append_field(os, "windows_built", diagnostics.windowing.windows_built, &wf);
  append_field(os, "window_commits", diagnostics.windowing.window_commits,
               &wf);
  append_field(os, "boundary_conflicts",
               diagnostics.windowing.boundary_conflicts, &wf);
  append_field(os, "window_reruns", diagnostics.windowing.window_reruns, &wf);
  append_field(os, "window_gates_total",
               diagnostics.windowing.window_gates_total, &wf);
  os << "}";
  os << ",\"resub\":{";
  bool rf = true;
  append_field(os, "funcred_merges", diagnostics.resub.funcred_merges, &rf);
  append_field(os, "harvest_truncated", diagnostics.resub.harvest_truncated,
               &rf);
  os << ",\"by_class\":{";
  for (std::size_t i = 0; i < diagnostics.resub.by_class.size(); ++i) {
    if (i != 0) os << ",";
    os << "\"" << kClassNames[i] << "\":{";
    bool cf = true;
    append_field(os, "harvested", diagnostics.resub.by_class[i].harvested,
                 &cf);
    append_field(os, "proved", diagnostics.resub.by_class[i].proved, &cf);
    append_field(os, "applied", diagnostics.resub.by_class[i].applied, &cf);
    append_field(os, "gain", diagnostics.resub.by_class[i].gain, &cf);
    os << "}";
  }
  os << "}}";
  os << ",\"power_model\":{";
  bool pf = false;
  os << "\"kind\":\"" << diagnostics.power_model.kind << "\"";
  append_field(os, "vector_pairs", diagnostics.power_model.vector_pairs, &pf);
  append_field(os, "timed_resims", diagnostics.power_model.timed_resims, &pf);
  append_field(os, "event_overflows", diagnostics.power_model.event_overflows,
               &pf);
  append_field(os, "glitch_share", diagnostics.power_model.glitch_share, &pf);
  os << "}";
  os << "}";
  // Snapshot of the attached MetricsRegistry; absent without a metrics sink
  // so every pre-existing consumer sees an unchanged document.
  if (!metrics_json.empty()) os << ",\"metrics\":" << metrics_json;
  os << "}";
  return os.str();
}

PowderReport optimize(Netlist& netlist, const PowderOptions& options) {
  try {
    PowderOptimizer optimizer(&netlist, options);
    return optimizer.run();
  } catch (const std::bad_alloc&) {
    // The one failure the degradation ladder cannot absorb once it lands
    // outside a guarded path; surface it typed instead of as bad_alloc.
    throw Error::resource("out of memory during optimization");
  }
}

}  // namespace powder
