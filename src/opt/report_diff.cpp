#include "opt/report_diff.hpp"

#include <cmath>
#include <limits>
#include <map>
#include <sstream>

#include "util/json.hpp"

namespace powder {

namespace {

void append_number(std::ostringstream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << "null";
  }
}

/// Percentage change candidate-vs-base; NaN (rendered null) when the base
/// is zero and no meaningful percentage exists.
double delta_percent(double base, double cand) {
  if (base == 0.0)
    return cand == 0.0 ? 0.0 : std::numeric_limits<double>::quiet_NaN();
  return 100.0 * (cand - base) / std::fabs(base);
}

struct Metric {
  bool present = false;
  double base = 0.0;
  double cand = 0.0;
};

Metric read_metric(const JsonValue& base, const JsonValue& cand,
                   const char* key) {
  Metric m;
  const JsonValue* b = base.find_number(key);
  const JsonValue* c = cand.find_number(key);
  if (b != nullptr && c != nullptr) {
    m.present = true;
    m.base = b->as_number();
    m.cand = c->as_number();
  }
  return m;
}

/// One metric section: {"base":..,"candidate":..,"delta_percent":..,
/// "regressed":..}. "Higher is worse" semantics for all three metrics the
/// verdict gates on (power, area, runtime).
bool emit_metric(std::ostringstream& os, const char* name, const Metric& m,
                 double threshold_percent, bool enabled) {
  os << ",\"" << name << "\":{";
  if (!m.present) {
    os << "\"present\":false}";
    return false;
  }
  const double dp = delta_percent(m.base, m.cand);
  const bool regressed =
      enabled && std::isfinite(dp) && dp > threshold_percent;
  os << "\"base\":";
  append_number(os, m.base);
  os << ",\"candidate\":";
  append_number(os, m.cand);
  os << ",\"delta_percent\":";
  append_number(os, dp);
  os << ",\"threshold_percent\":";
  append_number(os, threshold_percent);
  os << ",\"checked\":" << (enabled ? "true" : "false");
  os << ",\"regressed\":" << (regressed ? "true" : "false") << "}";
  return regressed;
}

/// Decision histogram over an audit NDJSON capture: counts the `decision`
/// field of record lines; event lines (no decision) are counted as events.
void audit_histogram(const std::string& text,
                     std::map<std::string, long long>* decisions,
                     long long* events, long long* bad_lines) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    const std::string_view line(text.data() + pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    std::string err;
    const auto doc = json_parse(line, &err);
    if (doc == nullptr || !doc->is_object()) {
      ++*bad_lines;
      continue;
    }
    const JsonValue* decision = doc->find_string("decision");
    if (decision != nullptr) {
      ++(*decisions)[decision->as_string()];
    } else {
      ++*events;
    }
  }
}

void emit_audit_section(std::ostringstream& os, const std::string& base,
                        const std::string& cand) {
  std::map<std::string, long long> base_hist, cand_hist;
  long long base_events = 0, cand_events = 0;
  long long base_bad = 0, cand_bad = 0;
  audit_histogram(base, &base_hist, &base_events, &base_bad);
  audit_histogram(cand, &cand_hist, &cand_events, &cand_bad);
  std::map<std::string, std::pair<long long, long long>> merged;
  for (const auto& [k, v] : base_hist) merged[k].first = v;
  for (const auto& [k, v] : cand_hist) merged[k].second = v;
  os << ",\"audit\":{\"decisions\":{";
  bool first = true;
  for (const auto& [k, v] : merged) {
    if (!first) os << ",";
    first = false;
    os << json_quote(k) << ":{\"base\":" << v.first
       << ",\"candidate\":" << v.second << ",\"delta\":"
       << (v.second - v.first) << "}";
  }
  os << "},\"events\":{\"base\":" << base_events << ",\"candidate\":"
     << cand_events << "},\"unparseable_lines\":{\"base\":" << base_bad
     << ",\"candidate\":" << cand_bad << "}}";
}

bool emit_attribution_section(std::ostringstream& os, const std::string& base,
                              const std::string& cand, std::string* error) {
  std::string err;
  const auto base_doc = json_parse(base, &err);
  if (base_doc == nullptr) {
    *error = "base attribution: " + err;
    return false;
  }
  const auto cand_doc = json_parse(cand, &err);
  if (cand_doc == nullptr) {
    *error = "candidate attribution: " + err;
    return false;
  }
  const JsonValue* bc = base_doc->find_object("by_class");
  const JsonValue* cc = cand_doc->find_object("by_class");
  os << ",\"attribution\":{\"by_class\":{";
  bool first = true;
  if (bc != nullptr && cc != nullptr) {
    for (const auto& [name, entry] : bc->members()) {
      const JsonValue* bg = entry.find_number("gain");
      const JsonValue* cand_entry = cc->find_object(name);
      const JsonValue* cg =
          cand_entry != nullptr ? cand_entry->find_number("gain") : nullptr;
      if (bg == nullptr || cg == nullptr) continue;
      if (!first) os << ",";
      first = false;
      os << json_quote(name) << ":{\"gain_base\":";
      append_number(os, bg->as_number());
      os << ",\"gain_candidate\":";
      append_number(os, cg->as_number());
      os << ",\"gain_delta\":";
      append_number(os, cg->as_number() - bg->as_number());
      os << "}";
    }
  }
  os << "}}";
  return true;
}

void flatten_json(const JsonValue& v, const std::string& path, int* budget,
                  bool* truncated, std::ostringstream& os, bool* first) {
  if (*budget <= 0) {
    *truncated = true;
    return;
  }
  switch (v.kind()) {
    case JsonValue::Kind::kObject:
      for (const auto& [k, child] : v.members())
        flatten_json(child, path.empty() ? k : path + "." + k, budget,
                     truncated, os, first);
      break;
    case JsonValue::Kind::kArray: {
      int i = 0;
      for (const JsonValue& child : v.items())
        flatten_json(child, path + "[" + std::to_string(i++) + "]", budget,
                     truncated, os, first);
      break;
    }
    case JsonValue::Kind::kNumber:
    case JsonValue::Kind::kBool:
    case JsonValue::Kind::kString:
    case JsonValue::Kind::kNull: {
      if (!*first) os << ",";
      *first = false;
      --*budget;
      os << json_quote(path) << ":";
      if (v.is_number()) {
        append_number(os, v.as_number());
      } else if (v.is_bool()) {
        os << (v.as_bool() ? "true" : "false");
      } else if (v.is_string()) {
        os << json_quote(v.as_string());
      } else {
        os << "null";
      }
      break;
    }
  }
}

}  // namespace

DiffResult diff_reports(const std::string& base_json,
                        const std::string& cand_json,
                        const DiffThresholds& thresholds,
                        const std::string& base_audit,
                        const std::string& cand_audit,
                        const std::string& base_attribution,
                        const std::string& cand_attribution) {
  DiffResult out;
  std::string err;
  const auto base = json_parse(base_json, &err);
  if (base == nullptr || !base->is_object()) {
    out.error = "base report: " + (err.empty() ? "not an object" : err);
    return out;
  }
  const auto cand = json_parse(cand_json, &err);
  if (cand == nullptr || !cand->is_object()) {
    out.error = "candidate report: " + (err.empty() ? "not an object" : err);
    return out;
  }

  std::ostringstream os;
  os.precision(17);
  os << "{\"schema_version\":" << kDiffSchemaVersion;
  const JsonValue* bv = base->find_number("schema_version");
  const JsonValue* cv = cand->find_number("schema_version");
  os << ",\"base_report_version\":";
  append_number(os, bv != nullptr ? bv->as_number()
                                  : std::numeric_limits<double>::quiet_NaN());
  os << ",\"candidate_report_version\":";
  append_number(os, cv != nullptr ? cv->as_number()
                                  : std::numeric_limits<double>::quiet_NaN());

  bool regressed = false;
  regressed |= emit_metric(os, "power",
                           read_metric(*base, *cand, "final_power"),
                           thresholds.power_percent, true);
  regressed |= emit_metric(os, "area",
                           read_metric(*base, *cand, "final_area"),
                           thresholds.area_percent, true);
  regressed |= emit_metric(os, "runtime",
                           read_metric(*base, *cand, "cpu_seconds"),
                           thresholds.runtime_percent,
                           thresholds.check_runtime);

  const Metric subs = read_metric(*base, *cand, "substitutions_applied");
  os << ",\"substitutions\":{";
  if (subs.present) {
    os << "\"base\":" << static_cast<long long>(subs.base)
       << ",\"candidate\":" << static_cast<long long>(subs.cand)
       << ",\"delta\":"
       << static_cast<long long>(subs.cand) -
              static_cast<long long>(subs.base);
  } else {
    os << "\"present\":false";
  }
  os << "}";

  // Per-class applied/gain comparison over the union of class tags, base
  // document order first (our writers emit a fixed class order, so this is
  // deterministic).
  os << ",\"by_class\":{";
  {
    const JsonValue* bc = base->find_object("by_class");
    const JsonValue* cc = cand->find_object("by_class");
    bool first = true;
    if (bc != nullptr && cc != nullptr) {
      for (const auto& [name, entry] : bc->members()) {
        const JsonValue* cand_entry = cc->find_object(name);
        if (cand_entry == nullptr) continue;
        const JsonValue* ba = entry.find_number("applied");
        const JsonValue* ca = cand_entry->find_number("applied");
        const JsonValue* bp = entry.find_number("power_delta");
        const JsonValue* cp = cand_entry->find_number("power_delta");
        if (ba == nullptr || ca == nullptr || bp == nullptr || cp == nullptr)
          continue;
        if (!first) os << ",";
        first = false;
        os << json_quote(name) << ":{\"applied_base\":"
           << static_cast<long long>(ba->as_number())
           << ",\"applied_candidate\":"
           << static_cast<long long>(ca->as_number()) << ",\"gain_base\":";
        append_number(os, bp->as_number());
        os << ",\"gain_candidate\":";
        append_number(os, cp->as_number());
        os << ",\"gain_delta\":";
        append_number(os, cp->as_number() - bp->as_number());
        os << "}";
      }
    }
    os << "}";
  }

  if (!base_audit.empty() || !cand_audit.empty())
    emit_audit_section(os, base_audit, cand_audit);
  if (!base_attribution.empty() && !cand_attribution.empty()) {
    if (!emit_attribution_section(os, base_attribution, cand_attribution,
                                  &out.error))
      return out;
  }

  os << ",\"regressed\":" << (regressed ? "true" : "false");
  os << ",\"verdict\":" << (regressed ? "\"regression\"" : "\"ok\"");
  os << "}";

  out.ok = true;
  out.regressed = regressed;
  out.verdict_json = os.str();
  return out;
}

std::string fold_bench_trajectory(
    const std::vector<std::pair<std::string, std::string>>& files) {
  std::ostringstream os;
  os.precision(17);
  os << "{\"schema_version\":" << kTrajectorySchemaVersion
     << ",\"benches\":{";
  std::ostringstream errors;
  bool first_file = true;
  bool first_error = true;
  for (const auto& [name, text] : files) {
    std::string err;
    const auto doc = json_parse(text, &err);
    if (doc == nullptr) {
      if (!first_error) errors << ",";
      first_error = false;
      errors << "{\"file\":" << json_quote(name) << ",\"error\":"
             << json_quote(err) << "}";
      continue;
    }
    if (!first_file) os << ",";
    first_file = false;
    os << json_quote(name) << ":{";
    // Cap the flattened leaf count per file so one oversized artifact
    // (e.g. a full benchmark dump) cannot bloat the trajectory.
    int budget = 512;
    bool truncated = false;
    bool first_leaf = true;
    flatten_json(*doc, "", &budget, &truncated, os, &first_leaf);
    if (truncated) {
      if (!first_leaf) os << ",";
      os << "\"_truncated\":true";
    }
    os << "}";
  }
  os << "},\"errors\":[" << errors.str() << "]}";
  return os.str();
}

}  // namespace powder
