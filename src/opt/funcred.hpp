#pragma once
// Functional-reduction pre-pass (SAT sweeping before the greedy loop).
//
// Signals with equal (or complementary) simulation signatures are grouped
// by the same FNV signature hash the candidate index uses, each suspected
// pair is proved with the run's permissibility engine — replacing stem `a`
// by signal `b` is sound whenever the replacement fault is untestable,
// which subsumes plain functional equivalence and additionally exploits
// observability don't-cares — and proven merges are committed through the
// SubstJournal so every delta-bus subscriber (simulators, estimator,
// timing, candidate index) stays consistent.
//
// The pass is deterministic: signals are visited in ascending GateId order,
// representatives are the lowest-id member of each signature class, and
// rounds repeat until one completes without a merge (re-simulation after a
// merge can reveal new equivalences inside the merged signal's old ODC
// set). Running the pass twice in a row therefore merges nothing the
// second time (idempotence).
//
// Soundness does NOT rest on the signature filter — signatures only
// nominate pairs. Every merge is individually proved untestable by the
// caller-supplied `prove` callback and then re-checked by the caller's
// post-commit guard (`guard_ok`); a guard failure rolls the merge back
// through the journal.

#include <functional>
#include <vector>

#include "opt/journal.hpp"
#include "opt/transform.hpp"
#include "sim/simulator.hpp"

namespace powder {

struct FuncredStats {
  long pairs_tested = 0;     ///< signature-nominated pairs handed to `prove`
  long sim_rejected = 0;     ///< pairs refuted by the word-compare recheck
  long proof_rejected = 0;   ///< pairs the proof engine refuted / aborted
  long merged = 0;           ///< merges committed and kept
  long guard_rollbacks = 0;  ///< merges undone by the post-commit guard
  int rounds = 0;            ///< sweep rounds run (last one merges nothing)
};

/// One committed merge: the transform (cls == ResubClass::kFuncRed) and the
/// journal's inverse delta, in commit order. The caller records these in
/// the WAL (kPrepass frames) and folds them into its commit log.
struct FuncredCommit {
  CandidateSub cand;
  AppliedSub applied;
  int round = 0;    ///< 0-based sweep round of the commit
  int ordinal = 0;  ///< merge ordinal within the round
};

struct FuncredHooks {
  /// Settles permissibility of a proposed merge. Return true to accept.
  /// (The resume path answers this from the WAL oracle instead of the
  /// engines; everything else in the pass is deterministic.)
  std::function<bool(const CandidateSub&)> prove;
  /// Called after every journal commit/rollback so the caller can refresh
  /// its own analyses (verify simulator, estimator, timing).
  std::function<void()> resync;
  /// Post-commit equivalence guard on the caller's independent pattern
  /// set; returning false rolls the merge back. May be null (no guard).
  std::function<bool()> guard_ok;
  /// Fired once per kept merge, after the guard accepted it — the WAL
  /// recording seam (kPrepass frames are durable before the pass moves
  /// on, so a crash mid-pass loses at most the in-flight merge). May be
  /// null.
  std::function<void(const FuncredCommit&)> on_commit;
};

/// Runs the pre-pass over `netlist`. `sim` must be the run's main
/// simulator (refreshed; its signatures nominate the pairs). Appends every
/// kept merge to `commits` (may be null). The journal records each merge
/// so the caller's end-of-run rollback walk covers pre-pass commits too.
FuncredStats functional_reduction(Netlist& netlist, Simulator& sim,
                                  SubstJournal& journal,
                                  const FuncredHooks& hooks,
                                  std::vector<FuncredCommit>* commits = nullptr);

}  // namespace powder
