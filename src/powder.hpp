#pragma once
// Umbrella header: the stable public API of the POWDER library.
//
// Typical use:
//
//   #include "powder.hpp"
//
//   powder::Netlist nl = powder::read_blif(path, lib);
//   powder::PowderOptions opt = powder::PowderOptions::builder()
//                                   .threads(8)
//                                   .deadline(std::chrono::seconds(30))
//                                   .delay_limit_factor(1.0)
//                                   .build();
//   powder::PowderReport report = powder::optimize(nl, opt);
//   std::cout << report.to_json() << "\n";
//
// Everything exported here — Netlist and its BLIF/Verilog I/O, the cell
// library, PowderOptions + Builder, PowderReport (+ Diagnostics/to_json),
// powder::optimize, and the observability plane (TraceSession/TraceSpan,
// MetricsRegistry, AuditLog, wired in via PowderOptions::Builder's
// .trace()/.metrics()/.audit()) — is the supported surface; headers under
// src/ not re-exported here are internal and may change without notice.

#include "io/blif.hpp"
#include "io/verilog.hpp"
#include "netlist/netlist.hpp"
#include "opt/powder.hpp"
#include "power/power.hpp"
#include "timing/timing.hpp"
#include "trace/audit.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
