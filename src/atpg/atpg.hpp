#pragma once
// ATPG-based permissibility checking (paper §3.2, [2,5]).
//
// A structural substitution replaces the signal at a *site* — a stem (every
// fanout of gate `stem`) or a single branch (one input pin of one sink) —
// by a *replacement function* over existing signals (a signal, its
// complement, a constant, or a new 2-input gate over two signals).
//
// The substitution is permissible iff the corresponding *replacement fault*
// is untestable: no primary-input vector exists for which the difference
// between the old signal and the replacement propagates to a primary
// output. This generalizes stuck-at redundancy (replacement by a constant).
//
// The checker is a PODEM-style branch-and-bound over the primary inputs of
// the relevant cone, with 3-valued (0/1/X) good- and faulty-circuit
// simulation as the implication engine. A backtrack limit bounds the
// effort; aborted checks are reported as such and treated as
// non-permissible by the optimizer, exactly as in the paper.

#include <optional>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/budget.hpp"

namespace powder {

class TraceSession;
class MetricsRegistry;

enum class AtpgResult {
  kTestFound,   ///< a distinguishing vector exists — NOT permissible
  kUntestable,  ///< proved permissible
  kAborted,     ///< backtrack limit hit — treated as not permissible
};

struct AtpgOptions {
  // Modest by default: the optimizer's hybrid engine escalates aborted
  // checks to the SAT miter, so a deep PODEM search is wasted effort.
  int backtrack_limit = 300;
  /// Optional shared run budget. Each check's backtrack limit is clamped to
  /// what is left in the global pool, actual use is charged back, and a dry
  /// pool or an expired deadline aborts the check immediately.
  ResourceBudget* budget = nullptr;
  /// Optional observability sinks (borrowed). When set, each check emits a
  /// "podem_check" span and feeds the proof-latency histogram; when null the
  /// cost is a single branch per check.
  TraceSession* trace = nullptr;
  MetricsRegistry* metrics = nullptr;
};

/// Where the replacement happens.
struct ReplacementSite {
  GateId stem = kNullGate;
  /// If set, only this branch of `stem` is replaced (input substitution);
  /// otherwise the whole stem (output substitution).
  std::optional<FanoutRef> branch;
};

/// What the signal is replaced by.
///
/// kCell is the general form of the transform IR: an ordered divisor set
/// (the fanins of a new library gate, in pin order) plus the cell's
/// function. kSignal and kTwoInput predate it and are kept as compact
/// special cases; the `num_sources`/`source` accessors present all kinds
/// uniformly as an ordered divisor list.
struct ReplacementFunction {
  enum class Kind { kConstant, kSignal, kTwoInput, kCell };
  Kind kind = Kind::kSignal;
  bool constant_value = false;     // kConstant
  GateId b = kNullGate;            // kSignal / kTwoInput
  bool invert_b = false;
  GateId c = kNullGate;            // kTwoInput
  bool invert_c = false;
  TruthTable two_input_fn;         // kTwoInput/kCell: function over divisors
  std::vector<GateId> divisors;    // kCell: ordered fanins of the new gate

  static ReplacementFunction constant(bool v);
  static ReplacementFunction signal(GateId b, bool invert = false);
  static ReplacementFunction two_input(GateId b, GateId c, TruthTable fn,
                                       bool invert_b = false,
                                       bool invert_c = false);
  static ReplacementFunction cell(std::vector<GateId> divisors, TruthTable fn);

  /// Uniform view of the ordered divisor set, independent of kind.
  int num_sources() const {
    switch (kind) {
      case Kind::kConstant: return 0;
      case Kind::kSignal: return 1;
      case Kind::kTwoInput: return 2;
      case Kind::kCell: return static_cast<int>(divisors.size());
    }
    return 0;
  }
  GateId source(int i) const {
    if (kind == Kind::kCell) return divisors[static_cast<std::size_t>(i)];
    return i == 0 ? b : c;
  }
  GateId& source_ref(int i) {
    if (kind == Kind::kCell) return divisors[static_cast<std::size_t>(i)];
    return i == 0 ? b : c;
  }
};

/// A found distinguishing vector: value per primary input (by PI position).
using TestVector = std::vector<bool>;

class AtpgChecker {
 public:
  explicit AtpgChecker(const Netlist& netlist, AtpgOptions options = {});

  /// Decides testability of the replacement fault. On kTestFound and
  /// `test != nullptr`, fills `*test` with a distinguishing input vector
  /// (unassigned inputs default to 0).
  AtpgResult check_replacement(const ReplacementSite& site,
                               const ReplacementFunction& rep,
                               TestVector* test = nullptr);

  /// Classic stuck-at test generation (replacement by a constant).
  AtpgResult check_stuck_at(const ReplacementSite& site, bool stuck_value,
                            TestVector* test = nullptr);

  /// Statistics over the checker's lifetime.
  struct Stats {
    long checks = 0;
    long tests_found = 0;
    long proved_untestable = 0;
    long aborted = 0;
    long total_backtracks = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  enum class Val : std::uint8_t { k0 = 0, k1 = 1, kX = 2 };

  AtpgResult check_replacement_impl(const ReplacementSite& site,
                                    const ReplacementFunction& rep,
                                    TestVector* test);

  const Netlist* netlist_;
  AtpgOptions options_;
  Stats stats_;

  // Observability handles, resolved once at construction (null = disabled;
  // the per-check cost is then a single branch).
  class Counter* m_checks_ = nullptr;
  class Counter* m_backtracks_ = nullptr;
  class Histogram* h_check_ns_ = nullptr;

  // Per-check working state.
  std::vector<std::uint8_t> in_faulty_region_;
  std::vector<std::uint8_t> in_relevant_;
  std::vector<GateId> region_topo_;     // relevant gates in topo order
  std::vector<GateId> region_pis_;      // assignable primary inputs
  std::vector<GateId> observable_pos_;  // POs inside the faulty region
  std::vector<Val> pi_assign_;          // by GateId, only PIs meaningful
  std::vector<Val> gval_, fval_;

  void setup_regions(const ReplacementSite& site,
                     const ReplacementFunction& rep);
  Val rep_value(const ReplacementFunction& rep) const;
  void imply(const ReplacementSite& site, const ReplacementFunction& rep);
  Val eval_cell_3v(GateId g, const std::vector<Val>& fanin_vals) const;

  bool difference_possible_at_site(const ReplacementSite& site,
                                   const ReplacementFunction& rep) const;
  bool detected() const;
  bool all_outputs_clean() const;

  /// Picks the next (PI, value) decision; kNullGate when none left.
  std::pair<GateId, Val> choose_objective(const ReplacementSite& site,
                                          const ReplacementFunction& rep);
  GateId backtrace_to_pi(GateId from, Val desired, Val* pi_value) const;
};

}  // namespace powder
