#pragma once
// Fault-region computation shared by the PODEM and SAT permissibility
// checkers.
//
// For a replacement at `site`, the *faulty region* is the set of gates
// whose value can differ between the original and the modified circuit
// (the branch's sink / the stem and everything downstream); the *relevant
// region* adds the transitive fanin of the faulty region and of the
// replacement sources — nothing outside it can influence testability.

#include <vector>

#include "atpg/atpg.hpp"
#include "netlist/netlist.hpp"

namespace powder {

struct FaultRegions {
  std::vector<std::uint8_t> in_faulty;    ///< by GateId
  std::vector<std::uint8_t> in_relevant;  ///< by GateId
  std::vector<GateId> relevant_topo;      ///< relevant gates, topo order
  std::vector<GateId> relevant_pis;
  std::vector<GateId> observable_pos;     ///< POs inside the faulty region
};

/// Computes the regions; throws CheckError when a replacement source lies
/// inside the faulty region (ill-posed query — would be a cycle).
FaultRegions compute_fault_regions(const Netlist& netlist,
                                   const ReplacementSite& site,
                                   const ReplacementFunction& rep);

}  // namespace powder
