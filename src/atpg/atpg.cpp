#include "atpg/atpg.hpp"

#include <span>

#include "atpg/regions.hpp"

#include <algorithm>

#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"
#include "util/fault_injection.hpp"

namespace powder {

ReplacementFunction ReplacementFunction::constant(bool v) {
  ReplacementFunction r;
  r.kind = Kind::kConstant;
  r.constant_value = v;
  return r;
}

ReplacementFunction ReplacementFunction::signal(GateId b, bool invert) {
  ReplacementFunction r;
  r.kind = Kind::kSignal;
  r.b = b;
  r.invert_b = invert;
  return r;
}

ReplacementFunction ReplacementFunction::two_input(GateId b, GateId c,
                                                   TruthTable fn,
                                                   bool invert_b,
                                                   bool invert_c) {
  POWDER_CHECK(fn.num_vars() == 2);
  ReplacementFunction r;
  r.kind = Kind::kTwoInput;
  r.b = b;
  r.c = c;
  r.invert_b = invert_b;
  r.invert_c = invert_c;
  r.two_input_fn = std::move(fn);
  return r;
}

ReplacementFunction ReplacementFunction::cell(std::vector<GateId> divisors,
                                              TruthTable fn) {
  POWDER_CHECK(fn.num_vars() == static_cast<int>(divisors.size()));
  ReplacementFunction r;
  r.kind = Kind::kCell;
  r.divisors = std::move(divisors);
  r.two_input_fn = std::move(fn);
  return r;
}

AtpgChecker::AtpgChecker(const Netlist& netlist, AtpgOptions options)
    : netlist_(&netlist), options_(options) {
  if (options_.metrics != nullptr) {
    m_checks_ = options_.metrics->counter(
        "powder_proof_podem_checks_total", "PODEM permissibility checks run");
    m_backtracks_ = options_.metrics->counter(
        "powder_proof_podem_backtracks_total",
        "PODEM backtracks spent across all checks");
    h_check_ns_ = options_.metrics->histogram(
        "powder_proof_podem_check_duration_ns",
        "Wall time per PODEM permissibility check");
  }
}

void AtpgChecker::setup_regions(const ReplacementSite& site,
                                const ReplacementFunction& rep) {
  FaultRegions regions = compute_fault_regions(*netlist_, site, rep);
  in_faulty_region_ = std::move(regions.in_faulty);
  in_relevant_ = std::move(regions.in_relevant);
  region_topo_ = std::move(regions.relevant_topo);
  region_pis_ = std::move(regions.relevant_pis);
  observable_pos_ = std::move(regions.observable_pos);

  const std::size_t n = netlist_->num_slots();
  pi_assign_.assign(n, Val::kX);
  gval_.assign(n, Val::kX);
  fval_.assign(n, Val::kX);
}

AtpgChecker::Val AtpgChecker::eval_cell_3v(
    GateId g, const std::vector<Val>& fanin_vals) const {
  const TruthTable& f = netlist_->cell_of(g).function;
  const int k = f.num_vars();
  // Enumerate completions of the X inputs; if both output values occur the
  // result is X. The X count is small for library cells (k <= 8).
  std::uint64_t base = 0;
  std::vector<int> x_pos;
  for (int v = 0; v < k; ++v) {
    if (fanin_vals[static_cast<std::size_t>(v)] == Val::k1)
      base |= 1ull << v;
    else if (fanin_vals[static_cast<std::size_t>(v)] == Val::kX)
      x_pos.push_back(v);
  }
  bool seen0 = false, seen1 = false;
  const std::uint64_t combos = 1ull << x_pos.size();
  for (std::uint64_t m = 0; m < combos; ++m) {
    std::uint64_t idx = base;
    for (std::size_t i = 0; i < x_pos.size(); ++i)
      if ((m >> i) & 1) idx |= 1ull << x_pos[i];
    (f.bit(idx) ? seen1 : seen0) = true;
    if (seen0 && seen1) return Val::kX;
  }
  return seen1 ? Val::k1 : Val::k0;
}

AtpgChecker::Val AtpgChecker::rep_value(const ReplacementFunction& rep) const {
  switch (rep.kind) {
    case ReplacementFunction::Kind::kConstant:
      return rep.constant_value ? Val::k1 : Val::k0;
    case ReplacementFunction::Kind::kSignal: {
      const Val v = gval_[rep.b];
      if (v == Val::kX) return Val::kX;
      const bool bit = (v == Val::k1) != rep.invert_b;
      return bit ? Val::k1 : Val::k0;
    }
    case ReplacementFunction::Kind::kTwoInput: {
      Val vb = gval_[rep.b];
      Val vc = gval_[rep.c];
      if (vb != Val::kX && rep.invert_b) vb = vb == Val::k1 ? Val::k0 : Val::k1;
      if (vc != Val::kX && rep.invert_c) vc = vc == Val::k1 ? Val::k0 : Val::k1;
      bool seen0 = false, seen1 = false;
      for (int bb = 0; bb < 2; ++bb) {
        if (vb != Val::kX && static_cast<int>(vb) != bb) continue;
        for (int cc = 0; cc < 2; ++cc) {
          if (vc != Val::kX && static_cast<int>(vc) != cc) continue;
          const std::uint64_t idx =
              static_cast<std::uint64_t>(bb) | (static_cast<std::uint64_t>(cc) << 1);
          (rep.two_input_fn.bit(idx) ? seen1 : seen0) = true;
        }
      }
      if (seen0 && seen1) return Val::kX;
      return seen1 ? Val::k1 : Val::k0;
    }
    case ReplacementFunction::Kind::kCell: {
      // Same X-completion enumeration as kTwoInput, over k divisors.
      const int k = static_cast<int>(rep.divisors.size());
      std::uint64_t base = 0;
      std::vector<int> x_pos;
      for (int v = 0; v < k; ++v) {
        const Val dv = gval_[rep.divisors[static_cast<std::size_t>(v)]];
        if (dv == Val::k1)
          base |= 1ull << v;
        else if (dv == Val::kX)
          x_pos.push_back(v);
      }
      bool seen0 = false, seen1 = false;
      const std::uint64_t combos = 1ull << x_pos.size();
      for (std::uint64_t m = 0; m < combos; ++m) {
        std::uint64_t idx = base;
        for (std::size_t i = 0; i < x_pos.size(); ++i)
          if ((m >> i) & 1) idx |= 1ull << x_pos[i];
        (rep.two_input_fn.bit(idx) ? seen1 : seen0) = true;
        if (seen0 && seen1) return Val::kX;
      }
      return seen1 ? Val::k1 : Val::k0;
    }
  }
  POWDER_CHECK(false);
}

void AtpgChecker::imply(const ReplacementSite& site,
                        const ReplacementFunction& rep) {
  // Good-circuit pass over the relevant region.
  std::vector<Val> fanin_vals;
  for (GateId g : region_topo_) {
    switch (netlist_->kind(g)) {
      case GateKind::kInput:
        gval_[g] = pi_assign_[g];
        break;
      case GateKind::kOutput:
        gval_[g] = gval_[netlist_->fanin(g, 0)];
        break;
      case GateKind::kCell: {
        fanin_vals.clear();
        for (GateId fi : netlist_->fanins(g)) fanin_vals.push_back(gval_[fi]);
        gval_[g] = eval_cell_3v(g, fanin_vals);
        break;
      }
    }
  }

  // Faulty-circuit pass, confined to the faulty region.
  const Val rv = rep_value(rep);
  auto effective = [&](GateId fi) {
    return in_faulty_region_[fi] ? fval_[fi] : gval_[fi];
  };
  for (GateId g : region_topo_) {
    if (!in_faulty_region_[g]) continue;
    // Stem replacement: the stem's signal itself carries the replacement
    // value in the faulty circuit.
    if (!site.branch.has_value() && g == site.stem) {
      fval_[g] = rv;
      continue;
    }
    switch (netlist_->kind(g)) {
      case GateKind::kInput:
        fval_[g] = gval_[g];
        break;
      case GateKind::kOutput: {
        const GateId fi = netlist_->fanin(g, 0);
        Val v = effective(fi);
        if (site.branch.has_value() && site.branch->gate == g) v = rv;
        fval_[g] = v;
        break;
      }
      case GateKind::kCell: {
        fanin_vals.clear();
        const std::span<const GateId> fanins = netlist_->fanins(g);
        for (int pin = 0; pin < static_cast<int>(fanins.size()); ++pin) {
          const GateId fi = fanins[static_cast<std::size_t>(pin)];
          Val v = effective(fi);
          if (site.branch.has_value() && site.branch->gate == g &&
              site.branch->pin == pin)
            v = rv;
          fanin_vals.push_back(v);
        }
        fval_[g] = eval_cell_3v(g, fanin_vals);
        break;
      }
    }
  }
}

bool AtpgChecker::difference_possible_at_site(
    const ReplacementSite& site, const ReplacementFunction& rep) const {
  const Val good = gval_[site.stem];
  const Val rv = rep_value(rep);
  if (good == Val::kX || rv == Val::kX) return true;
  return good != rv;
}

bool AtpgChecker::detected() const {
  for (GateId o : observable_pos_) {
    const Val g = gval_[o], f = fval_[o];
    if (g != Val::kX && f != Val::kX && g != f) return true;
  }
  return false;
}

bool AtpgChecker::all_outputs_clean() const {
  for (GateId o : observable_pos_) {
    const Val g = gval_[o], f = fval_[o];
    if (g == Val::kX || f == Val::kX || g != f) return false;
  }
  return true;
}

GateId AtpgChecker::backtrace_to_pi(GateId from, Val desired,
                                    Val* pi_value) const {
  GateId g = from;
  Val want = desired;
  for (int guard = 0; guard < 100000; ++guard) {
    if (netlist_->kind(g) == GateKind::kInput) {
      if (pi_assign_[g] != Val::kX) return kNullGate;  // already decided
      *pi_value = want == Val::kX ? Val::k1 : want;
      return g;
    }
    if (netlist_->kind(g) == GateKind::kOutput) {
      g = netlist_->fanin(g, 0);
      continue;
    }
    // Cell: descend into an X-valued fanin; choose the value for it that
    // keeps the desired output achievable (cofactor check).
    const TruthTable& f = netlist_->cell_of(g).function;
    const std::span<const GateId> fanins = netlist_->fanins(g);
    int pick = -1;
    for (int pin = 0; pin < static_cast<int>(fanins.size()); ++pin) {
      if (gval_[fanins[static_cast<std::size_t>(pin)]] == Val::kX) {
        pick = pin;
        break;
      }
    }
    if (pick < 0) return kNullGate;  // nothing to justify here
    Val child_want = Val::k1;
    if (want != Val::kX) {
      // Prefer the phase whose cofactor can still produce `want`.
      const TruthTable c1 = f.cofactor(pick, true);
      const bool can1 = want == Val::k1 ? !c1.is_constant(false)
                                        : !c1.is_constant(true);
      child_want = can1 ? Val::k1 : Val::k0;
    }
    g = fanins[static_cast<std::size_t>(pick)];
    want = child_want;
  }
  return kNullGate;
}

std::pair<GateId, AtpgChecker::Val> AtpgChecker::choose_objective(
    const ReplacementSite& site, const ReplacementFunction& rep) {
  Val pi_value = Val::k1;

  // 1) Excite the fault: make good(site) and rep differ.
  const Val good = gval_[site.stem];
  const Val rv = rep_value(rep);
  if (good == Val::kX) {
    const Val want = rv == Val::k1 ? Val::k0 : Val::k1;
    const GateId pi = backtrace_to_pi(site.stem, want, &pi_value);
    if (pi != kNullGate) return {pi, pi_value};
  }
  if (rv == Val::kX && rep.kind != ReplacementFunction::Kind::kConstant) {
    const Val want = good == Val::k1 ? Val::k0 : Val::k1;
    for (int i = 0; i < rep.num_sources(); ++i) {
      const GateId src = rep.source(i);
      if (gval_[src] != Val::kX) continue;
      const GateId pi = backtrace_to_pi(src, want, &pi_value);
      if (pi != kNullGate) return {pi, pi_value};
    }
  }

  // 2) Propagate: pick a D-frontier gate (some fanin differs, output still
  //    X in the faulty circuit) and justify one of its X side inputs.
  auto differs = [&](GateId fi, GateId sink, int pin) {
    Val fv = in_faulty_region_[fi] ? fval_[fi] : gval_[fi];
    if (site.branch.has_value() && site.branch->gate == sink &&
        site.branch->pin == pin)
      fv = rep_value(rep);
    else if (!site.branch.has_value() && fi == site.stem)
      fv = fval_[fi];
    const Val gv = gval_[fi];
    return gv != Val::kX && fv != Val::kX && gv != fv;
  };
  for (GateId g : region_topo_) {
    if (!in_faulty_region_[g] || fval_[g] != Val::kX) continue;
    if (netlist_->kind(g) != GateKind::kCell) continue;
    const std::span<const GateId> fanins = netlist_->fanins(g);
    bool has_d_input = false;
    for (int pin = 0; pin < static_cast<int>(fanins.size()); ++pin)
      if (differs(fanins[static_cast<std::size_t>(pin)], g, pin)) {
        has_d_input = true;
        break;
      }
    if (!has_d_input) continue;
    for (int pin = 0; pin < static_cast<int>(fanins.size()); ++pin) {
      const GateId fi = fanins[static_cast<std::size_t>(pin)];
      if (gval_[fi] != Val::kX) continue;
      // Heuristic: non-controlling value — the phase under which the cell
      // still depends on the differing input. Try 1 first via backtrace's
      // own cofactor logic by requesting X (free choice).
      const GateId pi = backtrace_to_pi(fi, Val::kX, &pi_value);
      if (pi != kNullGate) return {pi, pi_value};
    }
  }

  // 3) Fallback: first unassigned PI of the region.
  for (GateId pi : region_pis_)
    if (pi_assign_[pi] == Val::kX) return {pi, Val::k1};
  return {kNullGate, Val::kX};
}

AtpgResult AtpgChecker::check_replacement(const ReplacementSite& site,
                                          const ReplacementFunction& rep,
                                          TestVector* test) {
  if (options_.trace == nullptr && m_checks_ == nullptr)
    return check_replacement_impl(site, rep, test);
  const std::uint64_t t0 = trace_now_ns();
  const long bt_before = stats_.total_backtracks;
  const AtpgResult r = check_replacement_impl(site, rep, test);
  const std::uint64_t dur = trace_now_ns() - t0;
  const long backtracks = stats_.total_backtracks - bt_before;
  if (m_checks_ != nullptr) {
    m_checks_->inc();
    m_backtracks_->inc(backtracks);
    h_check_ns_->observe(dur);
  }
  if (options_.trace != nullptr)
    options_.trace->record_span("podem_check", "proof", t0, dur, "result",
                                static_cast<long long>(r), "backtracks",
                                backtracks);
  return r;
}

AtpgResult AtpgChecker::check_replacement_impl(const ReplacementSite& site,
                                               const ReplacementFunction& rep,
                                               TestVector* test) {
  ++stats_.checks;
  if (inject_fault(FaultInjector::Site::kAtpgProof)) {
    ++stats_.aborted;
    return AtpgResult::kAborted;
  }
  ResourceBudget* budget = options_.budget;
  long backtrack_limit = options_.backtrack_limit;
  if (budget != nullptr) {
    if (budget->expired() || budget->atpg_pool_dry()) {
      ++stats_.aborted;
      return AtpgResult::kAborted;
    }
    backtrack_limit = budget->grant_atpg_backtracks(backtrack_limit);
  }
  setup_regions(site, rep);

  struct Decision {
    GateId pi;
    Val value;
    bool flipped;
  };
  std::vector<Decision> decisions;
  int backtracks = 0;

  auto fill_test = [&]() {
    if (test == nullptr) return;
    test->assign(static_cast<std::size_t>(netlist_->num_inputs()), false);
    for (int i = 0; i < netlist_->num_inputs(); ++i) {
      const GateId pi = netlist_->inputs()[static_cast<std::size_t>(i)];
      (*test)[static_cast<std::size_t>(i)] = pi_assign_[pi] == Val::k1;
    }
  };

  auto backtrack = [&]() -> bool {
    while (!decisions.empty() && decisions.back().flipped) {
      pi_assign_[decisions.back().pi] = Val::kX;
      decisions.pop_back();
    }
    if (decisions.empty()) return false;
    Decision& d = decisions.back();
    d.value = d.value == Val::k1 ? Val::k0 : Val::k1;
    d.flipped = true;
    pi_assign_[d.pi] = d.value;
    ++backtracks;
    return true;
  };

  // Every exit charges the backtracks actually spent against the shared
  // budget, so the pool reflects real effort rather than granted effort.
  auto finish = [&](AtpgResult r) {
    stats_.total_backtracks += backtracks;
    if (budget != nullptr) budget->consume_atpg_backtracks(backtracks);
    switch (r) {
      case AtpgResult::kTestFound: ++stats_.tests_found; break;
      case AtpgResult::kUntestable: ++stats_.proved_untestable; break;
      case AtpgResult::kAborted: ++stats_.aborted; break;
    }
    return r;
  };

  for (;;) {
    if (backtracks > backtrack_limit ||
        (budget != nullptr && budget->expired()))
      return finish(AtpgResult::kAborted);
    imply(site, rep);
    if (detected()) {
      fill_test();
      return finish(AtpgResult::kTestFound);
    }
    const bool hopeless =
        !difference_possible_at_site(site, rep) || all_outputs_clean();
    if (hopeless) {
      if (!backtrack()) return finish(AtpgResult::kUntestable);
      continue;
    }
    const auto [pi, value] = choose_objective(site, rep);
    if (pi == kNullGate) {
      // Every relevant PI assigned and still undetected: dead end.
      if (!backtrack()) return finish(AtpgResult::kUntestable);
      continue;
    }
    POWDER_DCHECK(pi_assign_[pi] == Val::kX);
    pi_assign_[pi] = value;
    decisions.push_back({pi, value, false});
  }
}

AtpgResult AtpgChecker::check_stuck_at(const ReplacementSite& site,
                                       bool stuck_value, TestVector* test) {
  return check_replacement(site, ReplacementFunction::constant(stuck_value),
                           test);
}

}  // namespace powder
