#include "atpg/regions.hpp"

#include "util/check.hpp"

namespace powder {

FaultRegions compute_fault_regions(const Netlist& netlist,
                                   const ReplacementSite& site,
                                   const ReplacementFunction& rep) {
  FaultRegions r;
  const std::size_t n = netlist.num_slots();
  r.in_faulty.assign(n, 0);
  r.in_relevant.assign(n, 0);

  const GateId fault_entry =
      site.branch.has_value() ? site.branch->gate : site.stem;
  r.in_faulty[fault_entry] = 1;
  for (GateId g : netlist.tfo(fault_entry)) r.in_faulty[g] = 1;

  for (int i = 0; i < rep.num_sources(); ++i)
    POWDER_CHECK_MSG(!r.in_faulty[rep.source(i)],
                     "replacement source inside the faulty region");

  std::vector<GateId> stack;
  auto mark = [&](GateId g) {
    if (!r.in_relevant[g]) {
      r.in_relevant[g] = 1;
      stack.push_back(g);
    }
  };
  for (GateId g = 0; g < n; ++g)
    if (r.in_faulty[g]) mark(g);
  mark(site.stem);
  for (int i = 0; i < rep.num_sources(); ++i) mark(rep.source(i));
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    for (GateId fi : netlist.fanins(g)) mark(fi);
  }

  for (GateId g : netlist.topo_order())
    if (r.in_relevant[g]) r.relevant_topo.push_back(g);
  for (GateId g : netlist.inputs())
    if (r.in_relevant[g]) r.relevant_pis.push_back(g);
  for (GateId g : netlist.outputs())
    if (r.in_faulty[g]) r.observable_pos.push_back(g);
  return r;
}

}  // namespace powder
