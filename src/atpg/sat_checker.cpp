#include "atpg/sat_checker.hpp"

#include <span>

#include <limits>
#include <unordered_map>

#include "atpg/regions.hpp"
#include "logic/cube.hpp"
#include "sat/solver.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"
#include "util/fault_injection.hpp"

namespace powder {

namespace {

/// CNF encoding of `z <-> f(inputs)` via onset/offset cube covers.
void encode_function(SatSolver* solver, const TruthTable& f,
                     const std::vector<SatLit>& inputs, SatLit z) {
  POWDER_CHECK(static_cast<int>(inputs.size()) == f.num_vars());
  const Cover onset = Cover::from_truth_table(f);
  const Cover offset = Cover::from_truth_table(~f);
  auto emit = [&](const Cover& cover, SatLit out) {
    for (const Cube& cube : cover.cubes()) {
      std::vector<SatLit> clause;
      for (int v = 0; v < cube.num_vars(); ++v) {
        if (cube.lit(v) == Lit::kDash) continue;
        // cube literal true means input v == (lit == kOne); the clause
        // needs the negation of the cube literal.
        const SatLit in = inputs[static_cast<std::size_t>(v)];
        clause.push_back(cube.lit(v) == Lit::kOne ? sat_not(in) : in);
      }
      clause.push_back(out);
      solver->add_clause(std::move(clause));
    }
  };
  emit(onset, z);            // onset cube satisfied -> z
  emit(offset, sat_not(z));  // offset cube satisfied -> !z
}

}  // namespace

SatChecker::SatChecker(const Netlist& netlist, SatCheckerOptions options)
    : netlist_(&netlist), options_(options) {
  if (options_.metrics != nullptr) {
    m_checks_ = options_.metrics->counter(
        "powder_proof_sat_checks_total", "SAT miter permissibility checks run");
    m_conflicts_ = options_.metrics->counter(
        "powder_proof_sat_conflicts_total",
        "SAT conflicts spent across all checks");
    h_check_ns_ = options_.metrics->histogram(
        "powder_proof_sat_check_duration_ns",
        "Wall time per SAT permissibility check");
  }
}

AtpgResult SatChecker::check_replacement(const ReplacementSite& site,
                                         const ReplacementFunction& rep,
                                         TestVector* test) {
  if (options_.trace == nullptr && m_checks_ == nullptr)
    return check_replacement_impl(site, rep, test);
  const std::uint64_t t0 = trace_now_ns();
  const long conflicts_before = stats_.total_conflicts;
  const AtpgResult r = check_replacement_impl(site, rep, test);
  const std::uint64_t dur = trace_now_ns() - t0;
  const long conflicts = stats_.total_conflicts - conflicts_before;
  if (m_checks_ != nullptr) {
    m_checks_->inc();
    m_conflicts_->inc(conflicts);
    h_check_ns_->observe(dur);
  }
  if (options_.trace != nullptr)
    options_.trace->record_span("sat_check", "proof", t0, dur, "result",
                                static_cast<long long>(r), "conflicts",
                                conflicts);
  return r;
}

AtpgResult SatChecker::check_replacement_impl(const ReplacementSite& site,
                                              const ReplacementFunction& rep,
                                              TestVector* test) {
  ++stats_.checks;
  if (inject_fault(FaultInjector::Site::kSatProof)) {
    ++stats_.aborted;
    return AtpgResult::kAborted;
  }
  ResourceBudget* budget = options_.budget;
  long conflict_limit = options_.conflict_budget;
  if (budget != nullptr) {
    if (budget->expired() || budget->sat_pool_dry()) {
      ++stats_.aborted;
      return AtpgResult::kAborted;
    }
    conflict_limit = budget->grant_sat_conflicts(
        conflict_limit < 0 ? std::numeric_limits<long>::max()
                           : conflict_limit);
  }
  const FaultRegions regions = compute_fault_regions(*netlist_, site, rep);

  SatSolver solver;
  const long conflicts_before = solver.num_conflicts();

  // Good-circuit variables for every relevant gate; faulty-circuit
  // variables only inside the faulty region.
  std::unordered_map<GateId, SatLit> good, faulty;
  for (GateId g : regions.relevant_topo)
    good[g] = sat_lit(solver.new_var(), false);
  for (GateId g : regions.relevant_topo)
    if (regions.in_faulty[g]) faulty[g] = sat_lit(solver.new_var(), false);

  // Replacement literal.
  SatLit rep_lit;
  switch (rep.kind) {
    case ReplacementFunction::Kind::kConstant: {
      rep_lit = sat_lit(solver.new_var(), false);
      solver.add_unit(rep.constant_value ? rep_lit : sat_not(rep_lit));
      break;
    }
    case ReplacementFunction::Kind::kSignal:
      rep_lit = rep.invert_b ? sat_not(good.at(rep.b)) : good.at(rep.b);
      break;
    case ReplacementFunction::Kind::kTwoInput: {
      rep_lit = sat_lit(solver.new_var(), false);
      const SatLit b =
          rep.invert_b ? sat_not(good.at(rep.b)) : good.at(rep.b);
      const SatLit c =
          rep.invert_c ? sat_not(good.at(rep.c)) : good.at(rep.c);
      encode_function(&solver, rep.two_input_fn, {b, c}, rep_lit);
      break;
    }
    case ReplacementFunction::Kind::kCell: {
      rep_lit = sat_lit(solver.new_var(), false);
      std::vector<SatLit> divs;
      divs.reserve(rep.divisors.size());
      for (const GateId d : rep.divisors) divs.push_back(good.at(d));
      encode_function(&solver, rep.two_input_fn, divs, rep_lit);
      break;
    }
  }

  // Gate semantics.
  for (GateId g : regions.relevant_topo) {
    const GateKind kind = netlist_->kind(g);
    if (kind == GateKind::kInput) continue;
    const std::span<const GateId> fanins = netlist_->fanins(g);

    // Good circuit.
    if (kind == GateKind::kOutput) {
      // g <-> fanin
      const SatLit a = good.at(g), b = good.at(fanins[0]);
      solver.add_binary(sat_not(a), b);
      solver.add_binary(a, sat_not(b));
    } else {
      std::vector<SatLit> ins;
      for (GateId fi : fanins) ins.push_back(good.at(fi));
      encode_function(&solver, netlist_->cell_of(g).function, ins, good.at(g));
    }

    if (!regions.in_faulty[g]) continue;

    // Faulty circuit: fanins read faulty values inside the region, good
    // values outside; the site pin (or the whole stem) reads rep_lit.
    auto faulty_in = [&](GateId fi, int pin) -> SatLit {
      if (site.branch.has_value() && site.branch->gate == g &&
          site.branch->pin == pin)
        return rep_lit;
      if (!site.branch.has_value() && fi == site.stem) return rep_lit;
      return regions.in_faulty[fi] ? faulty.at(fi) : good.at(fi);
    };
    if (kind == GateKind::kOutput) {
      const SatLit a = faulty.at(g);
      const SatLit b = faulty_in(fanins[0], 0);
      solver.add_binary(sat_not(a), b);
      solver.add_binary(a, sat_not(b));
    } else if (!site.branch.has_value() && g == site.stem) {
      // The stem itself carries the replacement value in the faulty
      // circuit.
      const SatLit a = faulty.at(g);
      solver.add_binary(sat_not(a), rep_lit);
      solver.add_binary(a, sat_not(rep_lit));
    } else {
      std::vector<SatLit> ins;
      for (int pin = 0; pin < static_cast<int>(fanins.size()); ++pin)
        ins.push_back(faulty_in(fanins[static_cast<std::size_t>(pin)], pin));
      encode_function(&solver, netlist_->cell_of(g).function, ins,
                      faulty.at(g));
    }
  }

  // Miter: at least one observable PO differs.
  std::vector<SatLit> any_diff;
  for (GateId o : regions.observable_pos) {
    const SatLit d = sat_lit(solver.new_var(), false);
    const SatLit a = good.at(o), b = faulty.at(o);
    // d <-> a xor b
    solver.add_ternary(sat_not(d), a, b);
    solver.add_ternary(sat_not(d), sat_not(a), sat_not(b));
    solver.add_ternary(d, sat_not(a), b);
    solver.add_ternary(d, a, sat_not(b));
    any_diff.push_back(d);
  }
  if (any_diff.empty()) {
    ++stats_.proved_untestable;
    return AtpgResult::kUntestable;  // nothing observable at all
  }
  solver.add_clause(std::move(any_diff));

  const SatResult result = solver.solve({}, conflict_limit);
  const long used = solver.num_conflicts() - conflicts_before;
  stats_.total_conflicts += used;
  if (budget != nullptr) budget->consume_sat_conflicts(used);
  switch (result) {
    case SatResult::kSat: {
      if (test != nullptr) {
        test->assign(static_cast<std::size_t>(netlist_->num_inputs()), false);
        for (int i = 0; i < netlist_->num_inputs(); ++i) {
          const GateId pi = netlist_->inputs()[static_cast<std::size_t>(i)];
          const auto it = good.find(pi);
          if (it != good.end())
            (*test)[static_cast<std::size_t>(i)] =
                solver.model_value(sat_var(it->second));
        }
      }
      ++stats_.tests_found;
      return AtpgResult::kTestFound;
    }
    case SatResult::kUnsat:
      ++stats_.proved_untestable;
      return AtpgResult::kUntestable;
    case SatResult::kUnknown:
      ++stats_.aborted;
      return AtpgResult::kAborted;
  }
  POWDER_CHECK(false);
}

}  // namespace powder
