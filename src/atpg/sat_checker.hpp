#pragma once
// SAT-based permissibility checking — an independent decision procedure
// for the same question the PODEM checker answers.
//
// The original and modified circuits are encoded into CNF over the
// relevant cone (Tseitin with onset/offset cube covers per library cell)
// together with a miter that asserts "some observable primary output
// differs". The substitution is permissible iff the formula is
// unsatisfiable. A conflict budget plays the role of PODEM's backtrack
// limit: exceeding it is reported as kAborted and the optimizer treats
// the candidate as not permissible, exactly like the paper does with
// aborted ATPG runs.

#include "atpg/atpg.hpp"

namespace powder {

struct SatCheckerOptions {
  long conflict_budget = 20000;
  /// Optional shared run budget. Each check's conflict limit is clamped to
  /// what is left in the global pool, actual use is charged back, and a dry
  /// pool or an expired deadline aborts the check immediately.
  ResourceBudget* budget = nullptr;
  /// Optional observability sinks (borrowed); see AtpgOptions.
  TraceSession* trace = nullptr;
  MetricsRegistry* metrics = nullptr;
};

class SatChecker {
 public:
  explicit SatChecker(const Netlist& netlist, SatCheckerOptions options = {});

  AtpgResult check_replacement(const ReplacementSite& site,
                               const ReplacementFunction& rep,
                               TestVector* test = nullptr);

  struct Stats {
    long checks = 0;
    long tests_found = 0;
    long proved_untestable = 0;
    long aborted = 0;
    long total_conflicts = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  AtpgResult check_replacement_impl(const ReplacementSite& site,
                                    const ReplacementFunction& rep,
                                    TestVector* test);

  const Netlist* netlist_;
  SatCheckerOptions options_;
  Stats stats_;

  // Observability handles, resolved once at construction (null = disabled).
  class Counter* m_checks_ = nullptr;
  class Counter* m_conflicts_ = nullptr;
  class Histogram* h_check_ns_ = nullptr;
};

/// The engine used by PowderOptions to prove candidates.
///  kPodem  — the paper's choice (plain PODEM; aborts reject candidates).
///  kSat    — CNF miter, usually stronger on reconvergent/XOR-heavy logic.
///  kHybrid — PODEM first; a PODEM abort escalates to SAT. This matches
///            the effective power of the paper's TOS engine (whose clause-
///            based learning [5] goes well beyond plain PODEM) and is the
///            default.
enum class ProofEngine { kPodem, kSat, kHybrid };

}  // namespace powder
