#pragma once
// Library cells: logic function plus the power/delay data POWDER needs.
//
// Power model inputs: per-pin input capacitance (the load a signal sees per
// fanout pin).  Delay model inputs (paper §2): intrinsic delay `tau` and
// drive resistance `R`, so a gate's delay is D = tau + C_load * R.

#include <cstdint>
#include <string>
#include <vector>

#include "logic/truth_table.hpp"

namespace powder {

/// Index of a cell within its CellLibrary.
using CellId = std::int32_t;
inline constexpr CellId kInvalidCell = -1;

struct CellPin {
  std::string name;
  double input_cap = 1.0;  ///< capacitive load this pin presents
};

/// An immutable library cell.
struct Cell {
  std::string name;
  double area = 0.0;
  double intrinsic_delay = 0.0;    ///< tau
  double drive_resistance = 0.0;   ///< R
  std::vector<CellPin> pins;       ///< inputs, in function variable order
  TruthTable function;             ///< over pins.size() variables

  int num_inputs() const { return static_cast<int>(pins.size()); }

  bool is_constant() const { return pins.empty(); }
  bool is_inverter() const;
  bool is_buffer() const;
};

}  // namespace powder
