#pragma once
// The cell library: lookup by name, by function, and the special cells the
// optimizer and mapper need (inverter, constants, the two-input gates that
// OS3/IS3 substitutions may insert).

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "library/cell.hpp"

namespace powder {

class CellLibrary {
 public:
  CellLibrary() = default;

  /// Parses genlib text. Throws CheckError on malformed input.
  static CellLibrary from_genlib(std::string_view text);

  /// The built-in lib2-style library used by all experiments (see
  /// builtin_genlib_text() for the exact genlib source).
  static CellLibrary standard();

  /// Process-wide shared instance of standard(). Netlists built against it
  /// should adopt the handle (Netlist::adopt_library) so helpers can return
  /// them by value without dangling the library.
  static std::shared_ptr<const CellLibrary> standard_shared();

  /// genlib source of the standard library.
  static std::string_view builtin_genlib_text();

  CellId add(Cell cell);

  int num_cells() const { return static_cast<int>(cells_.size()); }
  const Cell& cell(CellId id) const { return cells_[static_cast<std::size_t>(id)]; }
  const std::vector<Cell>& cells() const { return cells_; }

  CellId find(std::string_view name) const;
  const Cell& cell_by_name(std::string_view name) const;

  /// Smallest-area inverter / buffer; kInvalidCell when absent.
  CellId inverter() const { return inverter_; }
  CellId buffer() const { return buffer_; }
  CellId const0() const { return const0_; }
  CellId const1() const { return const1_; }

  /// All two-input cells, used to enumerate OS3/IS3 insertions.
  const std::vector<CellId>& two_input_cells() const { return two_input_; }

  /// All cells with exactly `arity` inputs, in library order; used to
  /// enumerate k-input resubstitution insertions (OSK/ISK). Returns an
  /// empty list for arities the library does not stock.
  const std::vector<CellId>& cells_with_arity(int arity) const {
    static const std::vector<CellId> kEmpty;
    if (arity < 0 || arity >= static_cast<int>(by_arity_.size()))
      return kEmpty;
    return by_arity_[static_cast<std::size_t>(arity)];
  }

  /// Smallest-area cell implementing exactly `f` (same variable order);
  /// kInvalidCell when no cell matches.
  CellId find_exact(const TruthTable& f) const;

  /// All (cell, input permutation) pairs matching `f`: cell applied with
  /// pin i wired to f-variable perm[i] realizes f. Exhaustive over
  /// permutations, intended for small n (mapper cut matching).
  struct Match {
    CellId cell;
    std::vector<int> perm;
  };
  std::vector<Match> match_function(const TruthTable& f) const;

 private:
  std::vector<Cell> cells_;
  std::unordered_map<std::string, CellId> by_name_;
  std::unordered_map<std::string, std::vector<CellId>> by_function_hex_;
  CellId inverter_ = kInvalidCell;
  CellId buffer_ = kInvalidCell;
  CellId const0_ = kInvalidCell;
  CellId const1_ = kInvalidCell;
  std::vector<CellId> two_input_;
  std::vector<std::vector<CellId>> by_arity_;  // by_arity_[k] = k-input cells

  void index_cell(CellId id);
};

}  // namespace powder
