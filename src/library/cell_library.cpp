#include "library/cell_library.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "logic/expr.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace powder {

bool Cell::is_inverter() const {
  return num_inputs() == 1 && function == ~TruthTable::variable(1, 0);
}

bool Cell::is_buffer() const {
  return num_inputs() == 1 && function == TruthTable::variable(1, 0);
}

CellId CellLibrary::add(Cell cell) {
  POWDER_CHECK_MSG(by_name_.find(cell.name) == by_name_.end(),
                   "duplicate cell name " << cell.name);
  POWDER_CHECK(cell.function.num_vars() == cell.num_inputs());
  const CellId id = static_cast<CellId>(cells_.size());
  cells_.push_back(std::move(cell));
  index_cell(id);
  return id;
}

void CellLibrary::index_cell(CellId id) {
  const Cell& c = cells_[static_cast<std::size_t>(id)];
  by_name_.emplace(c.name, id);
  by_function_hex_[c.function.to_hex() + "/" +
                   std::to_string(c.num_inputs())].push_back(id);

  auto better = [&](CellId cand, CellId incumbent) {
    return incumbent == kInvalidCell ||
           cells_[static_cast<std::size_t>(cand)].area <
               cells_[static_cast<std::size_t>(incumbent)].area;
  };
  if (c.is_inverter() && better(id, inverter_)) inverter_ = id;
  if (c.is_buffer() && better(id, buffer_)) buffer_ = id;
  if (c.is_constant()) {
    if (c.function.is_constant(false) && better(id, const0_)) const0_ = id;
    if (c.function.is_constant(true) && better(id, const1_)) const1_ = id;
  }
  if (c.num_inputs() == 2) two_input_.push_back(id);
  const int arity = c.num_inputs();
  if (arity >= static_cast<int>(by_arity_.size()))
    by_arity_.resize(static_cast<std::size_t>(arity) + 1);
  by_arity_[static_cast<std::size_t>(arity)].push_back(id);
}

CellId CellLibrary::find(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kInvalidCell : it->second;
}

const Cell& CellLibrary::cell_by_name(std::string_view name) const {
  const CellId id = find(name);
  POWDER_CHECK_MSG(id != kInvalidCell, "no cell named " << name);
  return cell(id);
}

CellId CellLibrary::find_exact(const TruthTable& f) const {
  const auto it = by_function_hex_.find(f.to_hex() + "/" +
                                        std::to_string(f.num_vars()));
  if (it == by_function_hex_.end()) return kInvalidCell;
  CellId best = kInvalidCell;
  for (CellId id : it->second)
    if (best == kInvalidCell ||
        cell(id).area < cell(best).area)
      best = id;
  return best;
}

std::vector<CellLibrary::Match> CellLibrary::match_function(
    const TruthTable& f) const {
  std::vector<Match> out;
  const int n = f.num_vars();
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  // For each permutation, check whether some cell's function permuted this
  // way equals f. Iterating permutations of f and looking up in the hash
  // map keeps this O(n! * lookup).
  std::vector<std::vector<int>> perms;
  do {
    perms.push_back(perm);
  } while (std::next_permutation(perm.begin(), perm.end()));

  for (const auto& p : perms) {
    // We need a cell function g with g(y) == f(x) under the wiring
    // y_i = x_{p[i]}; by the permute() convention (new input i feeds old
    // input perm[i]) that is exactly g = f.permute(p).
    const TruthTable g = f.permute(p);
    const auto it =
        by_function_hex_.find(g.to_hex() + "/" + std::to_string(n));
    if (it == by_function_hex_.end()) continue;
    for (CellId id : it->second) out.push_back(Match{id, p});
  }
  return out;
}

// ---------------------------------------------------------------------------
// genlib parsing
// ---------------------------------------------------------------------------

CellLibrary CellLibrary::from_genlib(std::string_view text) {
  CellLibrary lib;
  // Token-stream parsing; genlib statements are
  //   GATE <name> <area> <output>=<expr>;
  //   PIN <pin-name|*> <phase> <input-load> <max-load> \
  //       <rise-block> <rise-fanout> <fall-block> <fall-fanout>
  // Statements may share a line (common in real genlib files), so the
  // parser is driven by the GATE/PIN keywords, not by line structure.
  std::vector<std::string> tokens;
  {
    std::string no_comments;
    bool in_comment = false;
    for (char ch : text) {
      if (ch == '#') in_comment = true;
      if (ch == '\n') in_comment = false;
      no_comments.push_back(in_comment ? ' ' : ch);
    }
    for (std::string_view t : split(no_comments)) tokens.emplace_back(t);
  }

  struct PendingPin {
    std::string name;  // "*" applies to all inputs
    double load = 1.0;
    double block = 0.0;
    double fanout = 0.0;
  };

  std::optional<Cell> pending;
  std::vector<PendingPin> pending_pins;
  std::vector<std::string> pending_input_names;

  auto flush = [&]() {
    if (!pending) return;
    Cell& c = *pending;
    for (const std::string& in : pending_input_names) {
      CellPin pin;
      pin.name = in;
      c.pins.push_back(std::move(pin));
    }
    double tau = 0.0, drive = 0.0;
    for (const PendingPin& pp : pending_pins) {
      bool any = false;
      for (CellPin& pin : c.pins) {
        if (pp.name == "*" || pin.name == pp.name) {
          pin.input_cap = pp.load;
          any = true;
        }
      }
      POWDER_CHECK_MSG(any || c.pins.empty(),
                       "PIN " << pp.name << " not an input of " << c.name);
      tau = std::max(tau, pp.block);
      drive = std::max(drive, pp.fanout);
    }
    c.intrinsic_delay = tau;
    c.drive_resistance = drive;
    lib.add(std::move(c));
    pending.reset();
    pending_pins.clear();
    pending_input_names.clear();
  };

  std::size_t i = 0;
  auto need = [&](std::size_t n, const char* what) {
    POWDER_CHECK_MSG(i + n <= tokens.size(), "truncated " << what
                                                          << " statement");
  };
  while (i < tokens.size()) {
    if (tokens[i] == "GATE") {
      flush();
      need(4, "GATE");
      Cell c;
      c.name = tokens[i + 1];
      c.area = std::stod(tokens[i + 2]);
      // Collect the "<out>=<expr>;" part up to the ';' terminator (the
      // expression may span several tokens).
      std::string rhs;
      std::size_t j = i + 3;
      bool terminated = false;
      for (; j < tokens.size(); ++j) {
        rhs += tokens[j];
        rhs += ' ';
        if (tokens[j].find(';') != std::string::npos) {
          terminated = true;
          ++j;
          break;
        }
      }
      POWDER_CHECK_MSG(terminated, "GATE " << c.name << " missing ';'");
      const std::size_t eq = rhs.find('=');
      POWDER_CHECK_MSG(eq != std::string::npos,
                       "GATE " << c.name << " missing '='");
      std::string expr = rhs.substr(eq + 1);
      expr = expr.substr(0, expr.find(';'));
      const ParsedExpr parsed = parse_boolean_expr(expr);
      c.function = parsed.function;
      pending_input_names = parsed.input_names;
      pending = std::move(c);
      i = j;
    } else if (tokens[i] == "PIN") {
      POWDER_CHECK_MSG(pending.has_value(), "PIN before GATE");
      need(9, "PIN");
      PendingPin pp;
      pp.name = tokens[i + 1];
      pp.load = std::stod(tokens[i + 3]);
      const double rise_block = std::stod(tokens[i + 5]);
      const double rise_fanout = std::stod(tokens[i + 6]);
      const double fall_block = std::stod(tokens[i + 7]);
      const double fall_fanout = std::stod(tokens[i + 8]);
      pp.block = 0.5 * (rise_block + fall_block);
      pp.fanout = 0.5 * (rise_fanout + fall_fanout);
      pending_pins.push_back(std::move(pp));
      i += 9;
    } else {
      POWDER_CHECK_MSG(false, "unrecognized genlib token: " << tokens[i]);
    }
  }
  flush();
  return lib;
}

// ---------------------------------------------------------------------------
// Built-in lib2-style library.
//
// The MCNC lib2.genlib itself is not redistributable here; this library has
// the same gate families and the load ratios used in the paper's worked
// example (AND-type input load 1, XOR-type input load 2). Area values are
// on the lib2 scale so that Table-1-style area columns look familiar.
// ---------------------------------------------------------------------------

std::string_view CellLibrary::builtin_genlib_text() {
  static const char* kText = R"(
# powder-lib2: a lib2-flavoured standard-cell library.
# PIN fields: name phase input-load max-load rise-block rise-fanout fall-block fall-fanout
GATE zero    0     O=CONST0;
GATE one     0     O=CONST1;
GATE inv1    928   O=!a;            PIN * INV 1 999 0.40 0.20 0.40 0.20
GATE inv2    1392  O=!a;            PIN * INV 2 999 0.30 0.10 0.30 0.10
GATE buf     1392  O=a;             PIN * NONINV 1 999 0.70 0.20 0.70 0.20
GATE nand2   1392  O=!(a*b);        PIN * INV 1 999 0.50 0.25 0.50 0.25
GATE nand3   1856  O=!(a*b*c);      PIN * INV 1 999 0.60 0.28 0.60 0.28
GATE nand4   2320  O=!(a*b*c*d);    PIN * INV 1 999 0.70 0.30 0.70 0.30
GATE nor2    1392  O=!(a+b);        PIN * INV 1 999 0.55 0.28 0.55 0.28
GATE nor3    1856  O=!(a+b+c);      PIN * INV 1 999 0.65 0.32 0.65 0.32
GATE nor4    2320  O=!(a+b+c+d);    PIN * INV 1 999 0.75 0.36 0.75 0.36
GATE and2    1856  O=a*b;           PIN * NONINV 1 999 0.80 0.22 0.80 0.22
GATE and3    2320  O=a*b*c;         PIN * NONINV 1 999 0.90 0.24 0.90 0.24
GATE or2     1856  O=a+b;           PIN * NONINV 1 999 0.85 0.24 0.85 0.24
GATE or3     2320  O=a+b+c;         PIN * NONINV 1 999 0.95 0.26 0.95 0.26
GATE xor2    2784  O=a^b;           PIN * UNKNOWN 2 999 1.00 0.30 1.00 0.30
GATE xnor2   2784  O=!(a^b);        PIN * UNKNOWN 2 999 1.00 0.30 1.00 0.30
GATE aoi21   1856  O=!((a*b)+c);    PIN * INV 1 999 0.65 0.28 0.65 0.28
GATE aoi22   2320  O=!((a*b)+(c*d)); PIN * INV 1 999 0.75 0.30 0.75 0.30
GATE oai21   1856  O=!((a+b)*c);    PIN * INV 1 999 0.65 0.28 0.65 0.28
GATE oai22   2320  O=!((a+b)*(c+d)); PIN * INV 1 999 0.75 0.30 0.75 0.30
GATE mux21   2784  O=(a*s)+(b*!s);  PIN * UNKNOWN 2 999 1.05 0.30 1.05 0.30
GATE nand2b  1856  O=!(!a*b);       PIN * UNKNOWN 1 999 0.60 0.26 0.60 0.26
GATE nor2b   1856  O=!(!a+b);       PIN * UNKNOWN 1 999 0.60 0.26 0.60 0.26
# Double-drive variants for gate re-sizing: twice the area and input
# capacitance, roughly half the drive resistance.
GATE nand2x2 2784  O=!(a*b);        PIN * INV 2 999 0.50 0.13 0.50 0.13
GATE nor2x2  2784  O=!(a+b);        PIN * INV 2 999 0.55 0.14 0.55 0.14
GATE and2x2  3712  O=a*b;           PIN * NONINV 2 999 0.80 0.11 0.80 0.11
GATE or2x2   3712  O=a+b;           PIN * NONINV 2 999 0.85 0.12 0.85 0.12
GATE xor2x2  5568  O=a^b;           PIN * UNKNOWN 4 999 1.00 0.15 1.00 0.15
GATE aoi21x2 3712  O=!((a*b)+c);    PIN * INV 2 999 0.65 0.14 0.65 0.14
)";
  return kText;
}

CellLibrary CellLibrary::standard() {
  return from_genlib(builtin_genlib_text());
}

std::shared_ptr<const CellLibrary> CellLibrary::standard_shared() {
  // One process-wide instance: netlists that adopt it share ownership, so
  // a helper can return a standard-library netlist by value without any
  // lifetime ceremony (the CHANGES.md PR 6 dangling-library footgun).
  static const std::shared_ptr<const CellLibrary> kShared =
      std::make_shared<const CellLibrary>(standard());
  return kShared;
}

}  // namespace powder
