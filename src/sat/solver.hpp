#pragma once
// A small CDCL SAT solver (two-watched-literal propagation, 1-UIP conflict
// analysis, activity-based branching, geometric restarts).
//
// Used by the SAT-based permissibility checker as an alternative to the
// PODEM engine: the replacement fault is encoded as a miter and the
// substitution is permissible iff the miter is unsatisfiable. Keeping an
// independent decision procedure lets the test suite cross-check the two
// engines clause-for-clause against exhaustive ground truth.

#include <cstdint>
#include <vector>

namespace powder {

/// A literal: variable index << 1 | complemented. Variables start at 0.
using SatLit = std::uint32_t;

inline SatLit sat_lit(std::uint32_t var, bool negated) {
  return (var << 1) | static_cast<SatLit>(negated);
}
inline std::uint32_t sat_var(SatLit l) { return l >> 1; }
inline bool sat_negated(SatLit l) { return l & 1u; }
inline SatLit sat_not(SatLit l) { return l ^ 1u; }
inline constexpr SatLit kSatLitUndef = 0xFFFFFFFFu;

enum class SatResult { kSat, kUnsat, kUnknown };

class SatSolver {
 public:
  SatSolver() = default;

  /// Creates a fresh variable; returns its index.
  std::uint32_t new_var();
  std::uint32_t num_vars() const { return static_cast<std::uint32_t>(assign_.size()); }

  /// Adds a clause (empty clause makes the instance trivially UNSAT).
  void add_clause(std::vector<SatLit> lits);
  void add_unit(SatLit a) { add_clause({a}); }
  void add_binary(SatLit a, SatLit b) { add_clause({a, b}); }
  void add_ternary(SatLit a, SatLit b, SatLit c) { add_clause({a, b, c}); }

  /// Solves under optional assumptions. `conflict_budget < 0` = no limit.
  SatResult solve(const std::vector<SatLit>& assumptions = {},
                  long conflict_budget = -1);

  /// Value of a variable in the satisfying assignment (valid after kSat).
  bool model_value(std::uint32_t var) const { return assign_[var] == 1; }

  long num_conflicts() const { return conflicts_total_; }

 private:
  // Assignment: 0 = false, 1 = true, 2 = unassigned.
  std::vector<std::uint8_t> assign_;
  std::vector<std::uint8_t> polarity_;  // phase saving
  std::vector<double> activity_;
  double var_inc_ = 1.0;

  struct Clause {
    std::vector<SatLit> lits;
    bool learnt = false;
  };
  std::vector<Clause> clauses_;
  // watches_[lit]: clause indices watching `lit`.
  std::vector<std::vector<std::uint32_t>> watches_;

  std::vector<SatLit> trail_;
  std::vector<std::uint32_t> trail_lim_;  // decision level boundaries
  std::vector<std::int32_t> reason_;      // per var: clause idx or -1
  std::vector<std::uint32_t> level_;      // per var: decision level
  std::size_t qhead_ = 0;
  bool unsat_ = false;
  long conflicts_total_ = 0;

  int decision_level() const { return static_cast<int>(trail_lim_.size()); }
  std::uint8_t value(SatLit l) const {
    const std::uint8_t v = assign_[sat_var(l)];
    if (v == 2) return 2;
    return static_cast<std::uint8_t>(v ^ static_cast<std::uint8_t>(sat_negated(l)));
  }
  void enqueue(SatLit l, std::int32_t reason);
  /// Returns conflicting clause index or -1.
  std::int32_t propagate();
  void analyze(std::int32_t confl, std::vector<SatLit>* learnt,
               int* backtrack_level);
  void cancel_until(int level);
  SatLit pick_branch();
  void bump(std::uint32_t var);
  void attach(std::uint32_t clause_idx);
};

}  // namespace powder
