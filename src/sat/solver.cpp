#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace powder {

std::uint32_t SatSolver::new_var() {
  const std::uint32_t v = num_vars();
  assign_.push_back(2);
  polarity_.push_back(0);
  activity_.push_back(0.0);
  reason_.push_back(-1);
  level_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  return v;
}

void SatSolver::attach(std::uint32_t clause_idx) {
  const Clause& c = clauses_[clause_idx];
  POWDER_DCHECK(c.lits.size() >= 2);
  watches_[c.lits[0]].push_back(clause_idx);
  watches_[c.lits[1]].push_back(clause_idx);
}

void SatSolver::add_clause(std::vector<SatLit> lits) {
  POWDER_CHECK_MSG(decision_level() == 0,
                   "clauses must be added at the root level");
  // Normalize: drop duplicate and false literals, detect tautologies and
  // satisfied clauses.
  std::sort(lits.begin(), lits.end());
  std::vector<SatLit> out;
  for (std::size_t i = 0; i < lits.size(); ++i) {
    POWDER_CHECK(sat_var(lits[i]) < num_vars());
    if (i + 1 < lits.size() && lits[i] == lits[i + 1]) continue;
    if (i + 1 < lits.size() && lits[i + 1] == sat_not(lits[i]))
      return;  // tautology
    const std::uint8_t v = value(lits[i]);
    if (v == 1) return;       // already satisfied at root
    if (v == 0) continue;     // false at root: drop literal
    out.push_back(lits[i]);
  }
  if (out.empty()) {
    unsat_ = true;
    return;
  }
  if (out.size() == 1) {
    if (value(out[0]) == 2) {
      enqueue(out[0], -1);
      if (propagate() != -1) unsat_ = true;
    }
    return;
  }
  clauses_.push_back(Clause{std::move(out), false});
  attach(static_cast<std::uint32_t>(clauses_.size() - 1));
}

void SatSolver::enqueue(SatLit l, std::int32_t reason) {
  const std::uint32_t v = sat_var(l);
  POWDER_DCHECK(assign_[v] == 2);
  assign_[v] = sat_negated(l) ? 0 : 1;
  reason_[v] = reason;
  level_[v] = static_cast<std::uint32_t>(decision_level());
  trail_.push_back(l);
}

std::int32_t SatSolver::propagate() {
  while (qhead_ < trail_.size()) {
    const SatLit p = trail_[qhead_++];
    // Clauses watching ~p must find a new watch or imply/conflict.
    std::vector<std::uint32_t>& watch_list = watches_[sat_not(p)];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watch_list.size(); ++i) {
      const std::uint32_t ci = watch_list[i];
      Clause& c = clauses_[ci];
      // Ensure the false literal is at position 1.
      if (c.lits[0] == sat_not(p)) std::swap(c.lits[0], c.lits[1]);
      POWDER_DCHECK(c.lits[1] == sat_not(p));
      if (value(c.lits[0]) == 1) {
        watch_list[keep++] = ci;  // satisfied, keep watch
        continue;
      }
      // Look for a new literal to watch.
      bool found = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (value(c.lits[k]) != 0) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[c.lits[1]].push_back(ci);
          found = true;
          break;
        }
      }
      if (found) continue;  // watch moved, do not keep
      // Unit or conflict.
      watch_list[keep++] = ci;
      if (value(c.lits[0]) == 0) {
        // Conflict: restore remaining watches and report.
        for (std::size_t k = i + 1; k < watch_list.size(); ++k)
          watch_list[keep++] = watch_list[k];
        watch_list.resize(keep);
        qhead_ = trail_.size();
        return static_cast<std::int32_t>(ci);
      }
      enqueue(c.lits[0], static_cast<std::int32_t>(ci));
    }
    watch_list.resize(keep);
  }
  return -1;
}

void SatSolver::bump(std::uint32_t var) {
  activity_[var] += var_inc_;
  if (activity_[var] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
}

void SatSolver::analyze(std::int32_t confl, std::vector<SatLit>* learnt,
                        int* backtrack_level) {
  learnt->clear();
  learnt->push_back(0);  // placeholder for the asserting literal
  std::vector<std::uint8_t> seen(num_vars(), 0);
  int counter = 0;
  SatLit p = 0;
  bool have_p = false;
  std::size_t index = trail_.size();

  for (;;) {
    POWDER_DCHECK(confl >= 0);
    const Clause& c = clauses_[static_cast<std::uint32_t>(confl)];
    for (std::size_t i = have_p ? 1 : 0; i < c.lits.size(); ++i) {
      const SatLit q = c.lits[i];
      const std::uint32_t v = sat_var(q);
      if (seen[v] || level_[v] == 0) continue;
      seen[v] = 1;
      bump(v);
      if (static_cast<int>(level_[v]) >= decision_level())
        ++counter;
      else
        learnt->push_back(q);
    }
    // Select next literal from the trail at the current level.
    do {
      POWDER_DCHECK(index > 0);
      p = trail_[--index];
    } while (!seen[sat_var(p)]);
    have_p = true;
    seen[sat_var(p)] = 0;
    --counter;
    if (counter == 0) break;
    confl = reason_[sat_var(p)];
  }
  (*learnt)[0] = sat_not(p);

  // Backtrack level: second highest level in the learnt clause.
  *backtrack_level = 0;
  if (learnt->size() > 1) {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt->size(); ++i)
      if (level_[sat_var((*learnt)[i])] > level_[sat_var((*learnt)[max_i])])
        max_i = i;
    std::swap((*learnt)[1], (*learnt)[max_i]);
    *backtrack_level = static_cast<int>(level_[sat_var((*learnt)[1])]);
  }
}

void SatSolver::cancel_until(int level) {
  if (decision_level() <= level) return;
  const std::uint32_t bound = trail_lim_[static_cast<std::size_t>(level)];
  for (std::size_t i = trail_.size(); i > bound; --i) {
    const std::uint32_t v = sat_var(trail_[i - 1]);
    polarity_[v] = assign_[v];
    assign_[v] = 2;
    reason_[v] = -1;
  }
  trail_.resize(bound);
  trail_lim_.resize(static_cast<std::size_t>(level));
  qhead_ = trail_.size();
}

SatLit SatSolver::pick_branch() {
  std::uint32_t best = num_vars();
  double best_act = -1.0;
  for (std::uint32_t v = 0; v < num_vars(); ++v) {
    if (assign_[v] != 2) continue;
    if (activity_[v] > best_act) {
      best_act = activity_[v];
      best = v;
    }
  }
  if (best == num_vars()) return kSatLitUndef;  // all assigned
  return sat_lit(best, polarity_[best] == 0);
}

SatResult SatSolver::solve(const std::vector<SatLit>& assumptions,
                           long conflict_budget) {
  if (unsat_) return SatResult::kUnsat;
  cancel_until(0);
  if (propagate() != -1) {
    unsat_ = true;
    return SatResult::kUnsat;
  }

  long conflicts = 0;
  // Assumptions become level-1..k decisions re-established after restarts.
  std::size_t assumed = 0;

  for (;;) {
    const std::int32_t confl = propagate();
    if (confl != -1) {
      ++conflicts;
      ++conflicts_total_;
      if (decision_level() <= static_cast<int>(assumed)) {
        // Conflict within/below the assumptions: UNSAT under assumptions.
        cancel_until(0);
        return SatResult::kUnsat;
      }
      std::vector<SatLit> learnt;
      int back_level = 0;
      analyze(confl, &learnt, &back_level);
      back_level = std::max(back_level, static_cast<int>(assumed));
      cancel_until(back_level);
      if (learnt.size() == 1) {
        if (value(learnt[0]) == 0) {
          cancel_until(0);
          return SatResult::kUnsat;
        }
        if (value(learnt[0]) == 2) enqueue(learnt[0], -1);
      } else {
        clauses_.push_back(Clause{learnt, true});
        const auto ci = static_cast<std::uint32_t>(clauses_.size() - 1);
        attach(ci);
        enqueue(learnt[0], static_cast<std::int32_t>(ci));
      }
      var_inc_ *= 1.05;
      if (conflict_budget >= 0 && conflicts > conflict_budget) {
        cancel_until(0);
        return SatResult::kUnknown;
      }
      continue;
    }
    // No conflict: extend assumptions, then decide.
    if (assumed < assumptions.size()) {
      const SatLit a = assumptions[assumed];
      const std::uint8_t v = value(a);
      if (v == 0) {
        cancel_until(0);
        return SatResult::kUnsat;  // assumption contradicted
      }
      trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
      ++assumed;
      if (v == 2) enqueue(a, -1);
      continue;
    }
    const SatLit decision = pick_branch();
    if (decision == kSatLitUndef) {
      // Full assignment without conflict: a model. It stays in assign_
      // (the next solve() call resets the trail first).
      return SatResult::kSat;
    }
    trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
    enqueue(decision, -1);
  }
}

}  // namespace powder
